(* Unit tests for Predicate and Query: construction, classification of
   atoms (local / equijoin / residual), rewriting helpers. *)

open Dyno_relational

let owner (r : Attr.Qualified.t) =
  (* toy resolution: attributes starting with 'a' belong to alias A,
     otherwise B *)
  if String.length (Attr.Qualified.attr r) > 0 && (Attr.Qualified.attr r).[0] = 'a'
  then "A"
  else "B"

let test_predicate_eval () =
  let p = [ Predicate.eq_const "A.ax" (Value.int 5); Predicate.cmp "A.ay" Predicate.Gt (Value.int 1) ] in
  let resolve (r : Attr.Qualified.t) =
    match Attr.Qualified.attr r with "ax" -> 0 | "ay" -> 1 | _ -> raise Not_found
  in
  let tup = Tuple.of_list [ Value.int 5; Value.int 3 ] in
  Alcotest.(check bool) "satisfied" true (Predicate.eval resolve p tup);
  let tup2 = Tuple.of_list [ Value.int 5; Value.int 0 ] in
  Alcotest.(check bool) "violated" false (Predicate.eval resolve p tup2);
  Alcotest.(check bool) "empty = TRUE" true (Predicate.eval resolve [] tup2)

let test_all_ops () =
  let resolve _ = 0 in
  let tup = Tuple.of_list [ Value.int 5 ] in
  let check op v expected =
    Alcotest.(check bool)
      (Predicate.op_to_string op)
      expected
      (Predicate.eval resolve [ Predicate.cmp "x" op (Value.int v) ] tup)
  in
  check Predicate.Eq 5 true;
  check Predicate.Ne 5 false;
  check Predicate.Lt 6 true;
  check Predicate.Le 5 true;
  check Predicate.Gt 4 true;
  check Predicate.Ge 6 false

let test_partition_by_alias () =
  let p =
    [
      Predicate.eq_const "A.ax" (Value.int 1);
      Predicate.eq_attr "A.ay" "B.bx";
      Predicate.eq_attr "ax" "az";
      (* both resolve to A via owner *)
    ]
  in
  let local, global = Predicate.partition_by_alias owner p in
  Alcotest.(check int) "local atoms" 2 (List.length local);
  Alcotest.(check int) "global atoms" 1 (List.length global)

let test_equijoin_pairs () =
  let p =
    [
      Predicate.eq_attr "A.ax" "B.bx";
      Predicate.cmp "A.ay" Predicate.Lt (Value.int 9);
      Predicate.atom
        (Predicate.Ref (Attr.Qualified.of_string "A.ay"))
        Predicate.Lt
        (Predicate.Ref (Attr.Qualified.of_string "B.by"));
    ]
  in
  let pairs = Predicate.equijoin_pairs owner p in
  Alcotest.(check int) "one hash-joinable pair" 1 (List.length pairs)

let test_map_refs () =
  let p = [ Predicate.eq_attr "A.old" "B.bx" ] in
  let p' =
    Predicate.map_refs
      (fun r ->
        if String.equal (Attr.Qualified.attr r) "old" then
          Attr.Qualified.make ?rel:(Attr.Qualified.rel r) "new"
        else r)
      p
  in
  Alcotest.(check string) "rewritten" "A.new = B.bx" (Predicate.to_string p')

let q () =
  Query.make ~name:"Q"
    ~select:[ Query.item "S.a"; Query.item ~as_:"renamed" "T.b" ]
    ~from:[ Query.table ~alias:"S" "ds1" "R1"; Query.table ~alias:"T" "ds2" "R2" ]
    ~where:[ Predicate.eq_attr "S.k" "T.k2" ]

let test_query_construction () =
  Alcotest.(check (list string)) "aliases" [ "S"; "T" ] (Query.aliases (q ()));
  Alcotest.(check (list string)) "sources in order" [ "ds1"; "ds2" ]
    (Query.sources (q ()));
  Alcotest.check_raises "duplicate alias"
    (Query.Malformed "duplicate alias X")
    (fun () ->
      ignore
        (Query.make ~name:"bad" ~select:[]
           ~from:[ Query.table ~alias:"X" "a" "R"; Query.table ~alias:"X" "b" "R2" ]
           ~where:[]));
  Alcotest.check_raises "empty FROM" (Query.Malformed "empty FROM clause")
    (fun () -> ignore (Query.make ~name:"bad" ~select:[] ~from:[] ~where:[]))

let test_mentions () =
  let q = q () in
  Alcotest.(check bool) "mentions R1@ds1" true
    (Query.mentions_relation q ~source:"ds1" ~rel:"R1");
  Alcotest.(check bool) "no R1@ds2" false
    (Query.mentions_relation q ~source:"ds2" ~rel:"R1");
  let owner _ = failwith "all refs qualified" in
  Alcotest.(check bool) "mentions attr k" true
    (Query.mentions_attribute q ~source:"ds1" ~rel:"R1" ~attr:"k" owner);
  Alcotest.(check bool) "no attr zz" false
    (Query.mentions_attribute q ~source:"ds1" ~rel:"R1" ~attr:"zz" owner)

let test_rename_relation () =
  let q' = Query.rename_relation (q ()) ~source:"ds1" ~old_rel:"R1" ~new_rel:"R1x" in
  Alcotest.(check bool) "repointed" true
    (Query.mentions_relation q' ~source:"ds1" ~rel:"R1x");
  Alcotest.(check bool) "alias kept" true (List.mem "S" (Query.aliases q'))

let test_rename_attribute () =
  let owner _ = failwith "qualified" in
  let q' = Query.rename_attribute (q ()) ~alias:"T" ~old_name:"b" ~new_name:"bb" owner in
  (* select item expr updated, as_name kept *)
  let item = List.nth (Query.select q') 1 in
  Alcotest.(check string) "expr renamed" "bb" (Attr.Qualified.attr item.Query.expr);
  Alcotest.(check string) "as_name survives" "renamed" item.Query.as_name

let test_refs_of_alias () =
  let owner _ = failwith "qualified" in
  let refs = Query.refs_of_alias (q ()) "S" owner in
  Alcotest.(check (list string)) "S uses a and k" [ "a"; "k" ]
    (List.sort String.compare refs)

let () =
  Alcotest.run "predicate-query"
    [
      ( "predicate",
        [
          Alcotest.test_case "conjunction eval" `Quick test_predicate_eval;
          Alcotest.test_case "all comparison ops" `Quick test_all_ops;
          Alcotest.test_case "partition by alias" `Quick test_partition_by_alias;
          Alcotest.test_case "equijoin pair extraction" `Quick test_equijoin_pairs;
          Alcotest.test_case "reference rewriting" `Quick test_map_refs;
        ] );
      ( "query",
        [
          Alcotest.test_case "construction/validation" `Quick test_query_construction;
          Alcotest.test_case "mentions relation/attribute" `Quick test_mentions;
          Alcotest.test_case "rename relation" `Quick test_rename_relation;
          Alcotest.test_case "rename attribute" `Quick test_rename_attribute;
          Alcotest.test_case "refs of alias" `Quick test_refs_of_alias;
        ] );
    ]
