test/test_sql.ml: Alcotest Attr Dyno_relational Eval List Query Relation Schema Schema_change Sql Sql_lexer Sql_parser Update Value
