test/test_schema.ml: Alcotest Attr Dyno_relational List Schema String Value
