test/test_eval.ml: Alcotest Attr Dyno_relational Eval Predicate Query Relation Schema Tuple Value
