test/test_depgraph.ml: Alcotest Array Attr Dep_graph Dependency Dyno_core Dyno_relational Dyno_view Fmt Hashtbl List Predicate Query Relation Schema Schema_change Umq Update Update_msg Value
