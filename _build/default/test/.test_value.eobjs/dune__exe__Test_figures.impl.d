test/test_figures.ml: Alcotest Dyno_core Dyno_relational Dyno_sim Dyno_workload Float Fmt Generator List Paper_schema Scenario Scheduler Schema_change Stats Strategy Update
