test/test_workload.ml: Alcotest Dyno_core Dyno_relational Dyno_sim Dyno_source Dyno_view Dyno_workload Eval Fmt Generator List Paper_schema Printexc Query Relation Scenario Schema Schema_change
