test/test_schema_change.mli:
