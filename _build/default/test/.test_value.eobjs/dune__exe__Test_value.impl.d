test/test_value.ml: Alcotest Dyno_relational Fmt List Value
