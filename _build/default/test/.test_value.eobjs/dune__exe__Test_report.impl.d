test/test_report.ml: Alcotest Dyno_core Dyno_sim Dyno_workload List Report Stats Strategy Trace
