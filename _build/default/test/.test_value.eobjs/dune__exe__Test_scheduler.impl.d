test/test_scheduler.ml: Alcotest Consistency Dyno_core Dyno_relational Dyno_sim Dyno_view Dyno_workload Generator List Paper_schema Scenario Stats Strategy
