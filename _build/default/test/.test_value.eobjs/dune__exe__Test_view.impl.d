test/test_view.ml: Alcotest Attr Dyno_relational Dyno_sim Dyno_source Dyno_view List Mat_view Query Query_engine Relation Schema Schema_change Umq Update Update_msg Value View_def
