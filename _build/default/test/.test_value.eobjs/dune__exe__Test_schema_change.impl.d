test/test_schema_change.ml: Alcotest Attr Dyno_relational Relation Schema Schema_change Tuple Value
