test/test_sim.ml: Alcotest Attr Clock Cost_model Dyno_relational Dyno_sim List Relation Rng Schema Timeline Trace Update Value
