test/test_source.mli:
