test/test_predicate_query.ml: Alcotest Attr Dyno_relational List Predicate Query String Tuple Value
