test/test_va.mli:
