test/test_catalog.ml: Alcotest Attr Catalog Dyno_relational Schema Schema_change Value
