test/test_consistency.ml: Alcotest Attr Consistency Dyno_core Dyno_relational Dyno_sim Dyno_view Dyno_workload Generator List Mat_view Relation Scenario Schema Strategy Tuple Value View_def
