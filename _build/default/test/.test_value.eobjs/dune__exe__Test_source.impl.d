test/test_source.ml: Alcotest Attr Catalog Data_source Dyno_relational Dyno_source List Meta_knowledge Predicate Query Registry Relation Schema Schema_change Tuple Update Value
