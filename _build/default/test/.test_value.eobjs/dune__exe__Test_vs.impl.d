test/test_vs.ml: Alcotest Attr Data_source Dyno_relational Dyno_source Dyno_vs List Meta_knowledge Predicate Query Registry Schema Schema_change String Value
