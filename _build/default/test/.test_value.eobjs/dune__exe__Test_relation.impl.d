test/test_relation.ml: Alcotest Attr Dyno_relational Relation Schema Tuple Value
