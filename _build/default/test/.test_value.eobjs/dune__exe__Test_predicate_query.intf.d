test/test_predicate_query.mli:
