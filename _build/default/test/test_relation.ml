(* Unit tests for Dyno_relational.Relation: signed multisets and their
   algebra — the foundation of incremental maintenance. *)

open Dyno_relational

let schema = Schema.of_list [ Attr.int "k"; Attr.string "s" ]

let t k s : Value.t list = [ Value.int k; Value.string s ]

let rel rows = Relation.of_list schema rows

let test_signed_counts () =
  let r = Relation.create schema in
  let tup = Tuple.of_list (t 1 "a") in
  Relation.add r tup 3;
  Alcotest.(check int) "count 3" 3 (Relation.count r tup);
  Relation.add r tup (-3);
  Alcotest.(check int) "zero entries dropped" 0 (Relation.support r);
  Relation.add r tup (-2);
  Alcotest.(check int) "negative allowed (delta)" (-2) (Relation.count r tup);
  Alcotest.(check int) "cardinality signed" (-2) (Relation.cardinality r);
  Alcotest.(check int) "mass absolute" 2 (Relation.mass r)

let test_typecheck_on_add () =
  let r = Relation.create schema in
  Alcotest.(check bool) "schema mismatch raises" true
    (match Relation.add r (Tuple.of_list [ Value.int 1 ]) 1 with
    | () -> false
    | exception Relation.Schema_mismatch _ -> true)

let test_sum_diff_negate () =
  let a = rel [ t 1 "a"; t 2 "b" ] in
  let b = rel [ t 2 "b"; t 3 "c" ] in
  let s = Relation.sum a b in
  Alcotest.(check int) "sum count" 2 (Relation.count s (Tuple.of_list (t 2 "b")));
  Alcotest.(check int) "sum card" 4 (Relation.cardinality s);
  let d = Relation.diff a b in
  Alcotest.(check int) "diff +1 -1" 1 (Relation.count d (Tuple.of_list (t 1 "a")));
  Alcotest.(check int) "diff removes common" 0
    (Relation.count d (Tuple.of_list (t 2 "b")));
  Alcotest.(check int) "diff negative" (-1)
    (Relation.count d (Tuple.of_list (t 3 "c")));
  Alcotest.(check bool) "a + (b - b) = a" true
    (Relation.equal a (Relation.sum a (Relation.diff b b)));
  Alcotest.(check bool) "negate . negate = id" true
    (Relation.equal a (Relation.negate (Relation.negate a)))

let test_positive_negative_split () =
  let d = Relation.of_counted schema [ (t 1 "a", 2); (t 2 "b", -3) ] in
  let pos = Relation.positive d and neg = Relation.negative d in
  Alcotest.(check int) "positive part" 2 (Relation.count pos (Tuple.of_list (t 1 "a")));
  Alcotest.(check int) "pos has no neg" 0 (Relation.count pos (Tuple.of_list (t 2 "b")));
  Alcotest.(check int) "negative part flipped" 3
    (Relation.count neg (Tuple.of_list (t 2 "b")));
  (* d = pos - neg *)
  Alcotest.(check bool) "recompose" true
    (Relation.equal d (Relation.diff pos neg))

let test_project_reaggregates () =
  let r = rel [ t 1 "a"; t 2 "a"; t 3 "b" ] in
  let p = Relation.project r [ "s" ] in
  Alcotest.(check int) "a collapsed to count 2" 2
    (Relation.count p (Tuple.of_list [ Value.string "a" ]));
  Alcotest.(check int) "total preserved" 3 (Relation.cardinality p)

let test_select () =
  let r = rel [ t 1 "a"; t 2 "b"; t 3 "a" ] in
  let sel =
    Relation.select (fun tup -> Value.equal (Tuple.get tup 1) (Value.string "a")) r
  in
  Alcotest.(check int) "selected" 2 (Relation.cardinality sel)

let test_equijoin_counting () =
  let left = Relation.of_counted schema [ (t 1 "x", 2) ] in
  let right_schema = Schema.of_list [ Attr.int "k2"; Attr.string "y" ] in
  let right =
    Relation.of_counted right_schema
      [ ([ Value.int 1; Value.string "p" ], 3); ([ Value.int 9; Value.string "q" ], 1) ]
  in
  let j = Relation.equijoin left right [ ("k", "k2") ] in
  Alcotest.(check int) "multiplicities multiply: 2*3" 6 (Relation.cardinality j);
  Alcotest.(check int) "one distinct output" 1 (Relation.support j);
  (* signed: join with a negative delta *)
  let neg = Relation.of_counted right_schema [ ([ Value.int 1; Value.string "p" ], -1) ] in
  let jn = Relation.equijoin left neg [ ("k", "k2") ] in
  Alcotest.(check int) "2 * -1 = -2" (-2) (Relation.cardinality jn)

let test_product () =
  let a = rel [ t 1 "a"; t 2 "b" ] in
  let b = rel [ t 3 "c" ] in
  let p = Relation.product a b in
  Alcotest.(check int) "2x1 product" 2 (Relation.cardinality p);
  Alcotest.(check int) "arity doubles" 4 (Schema.arity (Relation.schema p))

let test_distinct () =
  let r = Relation.of_counted schema [ (t 1 "a", 5); (t 2 "b", -2) ] in
  let d = Relation.distinct r in
  Alcotest.(check int) "positive collapsed to 1" 1
    (Relation.count d (Tuple.of_list (t 1 "a")));
  Alcotest.(check int) "negatives dropped" 0
    (Relation.count d (Tuple.of_list (t 2 "b")))

let test_apply_delta_guard () =
  let base = rel [ t 1 "a" ] in
  let bad = Relation.of_counted schema [ (t 9 "zz", -1) ] in
  Alcotest.(check bool) "negative residue trapped" true
    (match Relation.apply_delta base bad with
    | _ -> false
    | exception Invalid_argument _ -> true);
  let good = Relation.of_counted schema [ (t 1 "a", -1); (t 2 "b", 1) ] in
  let r = Relation.apply_delta base good in
  Alcotest.(check int) "applied" 1 (Relation.cardinality r)

let test_equal_and_subset () =
  let a = rel [ t 1 "a"; t 2 "b" ] in
  let b = rel [ t 2 "b"; t 1 "a" ] in
  Alcotest.(check bool) "order-insensitive equal" true (Relation.equal a b);
  let c = rel [ t 1 "a" ] in
  Alcotest.(check bool) "subset" true (Relation.is_subset c a);
  Alcotest.(check bool) "not superset" false (Relation.is_subset a c)

let test_rename_attr () =
  let a = rel [ t 1 "a" ] in
  let r = Relation.rename_attr a ~old_name:"s" ~new_name:"txt" in
  Alcotest.(check (list string)) "renamed" [ "k"; "txt" ]
    (Schema.names (Relation.schema r));
  Alcotest.(check int) "data unchanged" 1 (Relation.cardinality r)

let test_scale () =
  let a = rel [ t 1 "a" ] in
  Alcotest.(check int) "x3" 3 (Relation.cardinality (Relation.scale 3 a));
  Alcotest.(check int) "x0 empties" 0 (Relation.support (Relation.scale 0 a));
  Alcotest.(check int) "x-1 negates" (-1) (Relation.cardinality (Relation.scale (-1) a))

let () =
  Alcotest.run "relation"
    [
      ( "signed multisets",
        [
          Alcotest.test_case "signed counts" `Quick test_signed_counts;
          Alcotest.test_case "typecheck on add" `Quick test_typecheck_on_add;
          Alcotest.test_case "sum/diff/negate" `Quick test_sum_diff_negate;
          Alcotest.test_case "positive/negative split" `Quick test_positive_negative_split;
        ] );
      ( "algebra",
        [
          Alcotest.test_case "project re-aggregates" `Quick test_project_reaggregates;
          Alcotest.test_case "select" `Quick test_select;
          Alcotest.test_case "equijoin counting semantics" `Quick test_equijoin_counting;
          Alcotest.test_case "product" `Quick test_product;
          Alcotest.test_case "distinct" `Quick test_distinct;
          Alcotest.test_case "apply_delta guard" `Quick test_apply_delta_guard;
          Alcotest.test_case "equality/subset" `Quick test_equal_and_subset;
          Alcotest.test_case "rename attribute" `Quick test_rename_attr;
          Alcotest.test_case "scale" `Quick test_scale;
        ] );
    ]
