(* Unit tests for Dyno_source.Data_source: autonomous commits, query
   answering with broken-query detection, metadata validation, and the
   multi-version snapshot reconstruction that the strong-consistency
   checker and view adaptation rely on. *)

open Dyno_relational
open Dyno_source

let schema = Schema.of_list [ Attr.int "k"; Attr.string "v" ]

let fresh () =
  let s = Data_source.create "ds" in
  Data_source.add_relation s "R" schema;
  Data_source.load s "R" [ [ Value.int 1; Value.string "a" ]; [ Value.int 2; Value.string "b" ] ];
  s

let du ?(rel = "R") rows =
  Update.make ~source:"ds" ~rel (Relation.of_counted schema rows)

let test_commit_du () =
  let s = fresh () in
  let v = Data_source.commit_du s ~time:1.0 (du [ ([ Value.int 3; Value.string "c" ], 1) ]) in
  Alcotest.(check int) "version bumps" 1 v;
  Alcotest.(check int) "extent grew" 3 (Relation.cardinality (Data_source.relation s "R"));
  let v2 =
    Data_source.commit_du s ~time:2.0 (du [ ([ Value.int 1; Value.string "a" ], -1) ])
  in
  Alcotest.(check int) "second version" 2 v2;
  Alcotest.(check int) "delete applied" 2 (Relation.cardinality (Data_source.relation s "R"))

let test_commit_rejections () =
  let s = fresh () in
  let trap u =
    match Data_source.commit_du s ~time:0.0 u with
    | _ -> false
    | exception Data_source.Commit_rejected _ -> true
  in
  Alcotest.(check bool) "wrong source" true
    (trap (Update.make ~source:"other" ~rel:"R" (Relation.create schema)));
  Alcotest.(check bool) "missing relation" true
    (trap (Update.make ~source:"ds" ~rel:"ZZ" (Relation.create schema)));
  let bad_schema = Schema.of_list [ Attr.int "k" ] in
  Alcotest.(check bool) "schema mismatch" true
    (trap (Update.make ~source:"ds" ~rel:"R" (Relation.create bad_schema)))

let test_commit_sc_extent_transforms () =
  let s = fresh () in
  ignore
    (Data_source.commit_sc s ~time:1.0
       (Schema_change.Add_attribute
          { source = "ds"; rel = "R"; attr = Attr.int "n"; default = Value.int 7 }));
  let r = Data_source.relation s "R" in
  Alcotest.(check int) "arity 3" 3 (Schema.arity (Relation.schema r));
  Relation.iter
    (fun tup _ ->
      Alcotest.(check bool) "default filled" true
        (Value.equal (Tuple.get tup 2) (Value.int 7)))
    r;
  ignore
    (Data_source.commit_sc s ~time:2.0
       (Schema_change.Drop_attribute { source = "ds"; rel = "R"; attr = "v" }));
  let r = Data_source.relation s "R" in
  Alcotest.(check (list string)) "v gone" [ "k"; "n" ] (Schema.names (Relation.schema r));
  ignore
    (Data_source.commit_sc s ~time:3.0
       (Schema_change.Rename_relation { source = "ds"; old_name = "R"; new_name = "Rx" }));
  Alcotest.(check bool) "renamed extent follows" true
    (Data_source.relation_opt s "R" = None
    && Data_source.relation_opt s "Rx" <> None)

let single_table_query ?(attrs = [ "k"; "v" ]) rel =
  Query.make ~name:"probe"
    ~select:(List.map (fun a -> Query.item (rel ^ "." ^ a)) attrs)
    ~from:[ Query.table ~alias:rel "ds" rel ]
    ~where:[]

let test_answer_and_broken () =
  let s = fresh () in
  (match Data_source.answer s (single_table_query "R") ~bound:[] with
  | Ok ans ->
      Alcotest.(check int) "2 rows" 2 (Relation.cardinality ans.Data_source.rows);
      Alcotest.(check int) "scanned" 2 ans.Data_source.scanned
  | Error _ -> Alcotest.fail "query should succeed");
  (* missing relation -> broken, not an exception *)
  (match Data_source.answer s (single_table_query "Nope") ~bound:[] with
  | Ok _ -> Alcotest.fail "should be broken"
  | Error b -> Alcotest.(check string) "source" "ds" b.Data_source.source);
  (* missing attribute -> broken *)
  ignore
    (Data_source.commit_sc s ~time:1.0
       (Schema_change.Drop_attribute { source = "ds"; rel = "R"; attr = "v" }));
  match Data_source.answer s (single_table_query "R") ~bound:[] with
  | Ok _ -> Alcotest.fail "dropped attribute should break the query"
  | Error _ -> ()

let test_answer_with_bound () =
  let s = fresh () in
  let bschema = Schema.of_list [ Attr.int "bk" ] in
  let bound_rel = Relation.of_list bschema [ [ Value.int 1 ] ] in
  let q =
    Query.make ~name:"semi"
      ~select:[ Query.item "R.v" ]
      ~from:[ Query.table ~alias:"R" "ds" "R"; Query.table ~alias:"B" "ds" "__b" ]
      ~where:[ Predicate.eq_attr "R.k" "B.bk" ]
  in
  match Data_source.answer s q ~bound:[ ("B", bound_rel) ] with
  | Ok ans -> Alcotest.(check int) "semijoin" 1 (Relation.cardinality ans.Data_source.rows)
  | Error b -> Alcotest.failf "unexpected break: %a" Data_source.pp_broken b

let test_validate () =
  let s = fresh () in
  Alcotest.(check bool) "valid" true
    (Data_source.validate s (single_table_query "R") = Ok ());
  Alcotest.(check bool) "missing rel invalid" true
    (match Data_source.validate s (single_table_query "Zed") with
    | Error _ -> true
    | Ok () -> false);
  ignore
    (Data_source.commit_sc s ~time:1.0
       (Schema_change.Drop_attribute { source = "ds"; rel = "R"; attr = "v" }));
  Alcotest.(check bool) "missing attr invalid" true
    (match Data_source.validate s (single_table_query "R") with
    | Error _ -> true
    | Ok () -> false);
  Alcotest.(check bool) "narrower query fine" true
    (Data_source.validate s (single_table_query ~attrs:[ "k" ] "R") = Ok ())

let test_snapshot_reconstruction () =
  let s = fresh () in
  (* history: +(3,c) | rename R->R2 | -(1,a) | drop attr v *)
  ignore (Data_source.commit_du s ~time:1.0 (du [ ([ Value.int 3; Value.string "c" ], 1) ]));
  ignore
    (Data_source.commit_sc s ~time:2.0
       (Schema_change.Rename_relation { source = "ds"; old_name = "R"; new_name = "R2" }));
  ignore
    (Data_source.commit_du s ~time:3.0
       (Update.make ~source:"ds" ~rel:"R2"
          (Relation.of_counted schema [ ([ Value.int 1; Value.string "a" ], -1) ])));
  ignore
    (Data_source.commit_sc s ~time:4.0
       (Schema_change.Drop_attribute { source = "ds"; rel = "R2"; attr = "v" }));
  Alcotest.(check int) "4 versions" 4 (Data_source.version s);
  (* v0: R = {(1,a),(2,b)} *)
  let r0 = Data_source.relation_at s ~version:0 "R" in
  Alcotest.(check int) "v0 card" 2 (Relation.cardinality r0);
  Alcotest.(check int) "v0 arity" 2 (Schema.arity (Relation.schema r0));
  (* v1: R gains (3,c) *)
  Alcotest.(check int) "v1 card" 3
    (Relation.cardinality (Data_source.relation_at s ~version:1 "R"));
  (* v2: renamed; R absent, R2 present with same data *)
  Alcotest.(check bool) "v2 R absent" true
    (match Data_source.relation_at s ~version:2 "R" with
    | _ -> false
    | exception Catalog.No_such_relation _ -> true);
  Alcotest.(check int) "v2 R2 card" 3
    (Relation.cardinality (Data_source.relation_at s ~version:2 "R2"));
  (* v3: (1,a) deleted *)
  Alcotest.(check int) "v3 card" 2
    (Relation.cardinality (Data_source.relation_at s ~version:3 "R2"));
  (* v4 = current: narrow schema *)
  let r4 = Data_source.relation_at s ~version:4 "R2" in
  Alcotest.(check (list string)) "v4 names" [ "k" ] (Schema.names (Relation.schema r4));
  (* reconstruction does not corrupt current state *)
  Alcotest.(check int) "current card still 2" 2
    (Relation.cardinality (Data_source.relation s "R2"))

let test_registry () =
  let reg = Registry.create () in
  let s = fresh () in
  Registry.register reg s;
  Alcotest.(check bool) "find" true (Registry.find reg "ds" == s);
  Alcotest.check_raises "unknown" (Registry.Unknown_source "nope") (fun () ->
      ignore (Registry.find reg "nope"));
  (* re-register replaces *)
  let s2 = Data_source.create "ds" in
  Registry.register reg s2;
  Alcotest.(check bool) "replaced" true (Registry.find reg "ds" == s2);
  Registry.unregister reg "ds";
  Alcotest.(check bool) "gone" false (Registry.mem reg "ds")

let test_meta_knowledge_rekey () =
  let mk = Meta_knowledge.create () in
  Meta_knowledge.mark_dispensable mk ~source:"ds" ~rel:"R" ~attr:"v";
  Meta_knowledge.rename_relation mk ~source:"ds" ~old_rel:"R" ~new_rel:"R2";
  Alcotest.(check bool) "old key gone" false
    (Meta_knowledge.is_dispensable mk ~source:"ds" ~rel:"R" ~attr:"v");
  Alcotest.(check bool) "new key found" true
    (Meta_knowledge.is_dispensable mk ~source:"ds" ~rel:"R2" ~attr:"v");
  Meta_knowledge.rename_attribute mk ~source:"ds" ~rel:"R2" ~old_attr:"v" ~new_attr:"w";
  Alcotest.(check bool) "attr rekeyed" true
    (Meta_knowledge.is_dispensable mk ~source:"ds" ~rel:"R2" ~attr:"w");
  (* save/restore round-trips *)
  let snap = Meta_knowledge.save mk in
  Meta_knowledge.rename_relation mk ~source:"ds" ~old_rel:"R2" ~new_rel:"R3";
  Meta_knowledge.restore mk snap;
  Alcotest.(check bool) "restored" true
    (Meta_knowledge.is_dispensable mk ~source:"ds" ~rel:"R2" ~attr:"w")

let () =
  Alcotest.run "source"
    [
      ( "commits",
        [
          Alcotest.test_case "data updates" `Quick test_commit_du;
          Alcotest.test_case "rejections" `Quick test_commit_rejections;
          Alcotest.test_case "schema-change extent transforms" `Quick
            test_commit_sc_extent_transforms;
        ] );
      ( "queries",
        [
          Alcotest.test_case "answer + broken detection" `Quick test_answer_and_broken;
          Alcotest.test_case "bound partial results" `Quick test_answer_with_bound;
          Alcotest.test_case "metadata validation" `Quick test_validate;
        ] );
      ( "versioning",
        [ Alcotest.test_case "snapshot reconstruction" `Quick test_snapshot_reconstruction ] );
      ( "registry & meta knowledge",
        [
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "meta-knowledge rekey/save/restore" `Quick
            test_meta_knowledge_rekey;
        ] );
    ]
