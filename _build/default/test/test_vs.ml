(* Unit tests for view synchronization (VS): every rewriting case of the
   EVE-style synchronizer, on the paper's BookInfo example world. *)

open Dyno_relational
open Dyno_source

let retailer = "Retailer"
let library = "Library"
let digest = "Digest"

let store_schema = Schema.of_list [ Attr.int "SID"; Attr.string "Store" ]

let item_schema =
  Schema.of_list
    [ Attr.int "SID"; Attr.string "Book"; Attr.string "Author"; Attr.float "Price" ]

let catalog_schema =
  Schema.of_list
    [ Attr.string "Title"; Attr.string "Publisher"; Attr.string "Review" ]

let storeitems_schema =
  Schema.of_list
    [ Attr.string "Store"; Attr.string "Book"; Attr.string "Author"; Attr.float "Price" ]

let readerdigest_schema =
  Schema.of_list [ Attr.string "Article"; Attr.string "Comments" ]

let registry () =
  let reg = Registry.create () in
  let mk_src id rels =
    let s = Data_source.create id in
    List.iter (fun (n, sc) -> Data_source.add_relation s n sc) rels;
    Registry.register reg s
  in
  mk_src retailer
    [ ("Store", store_schema); ("Item", item_schema); ("StoreItems", storeitems_schema) ];
  mk_src library [ ("Catalog", catalog_schema) ];
  mk_src digest [ ("ReaderDigest", readerdigest_schema) ];
  reg

let mk () =
  let mk = Meta_knowledge.create () in
  Meta_knowledge.add_rel_replacement mk ~source:retailer ~rel:"Store"
    {
      Meta_knowledge.repl_source = retailer;
      repl_rel = "StoreItems";
      covers =
        [
          ("Store", [ ("Store", "Store") ]);
          ("Item", [ ("Book", "Book"); ("Author", "Author"); ("Price", "Price") ]);
        ];
    };
  Meta_knowledge.add_attr_replacement mk ~source:library ~rel:"Catalog"
    ~attr:"Review"
    {
      Meta_knowledge.new_source = digest;
      new_rel = "ReaderDigest";
      new_attr = "Comments";
      join_on = [ ("Title", "Article") ];
      via_alias = Some "R";
    };
  Meta_knowledge.mark_dispensable mk ~source:library ~rel:"Catalog" ~attr:"Publisher";
  mk

let view () =
  Query.make ~name:"BookInfo"
    ~select:
      [
        Query.item "Store";
        Query.item "Book";
        Query.item "I.Author";
        Query.item "Price";
        Query.item "Publisher";
        Query.item "Review";
      ]
    ~from:
      [
        Query.table ~alias:"S" retailer "Store";
        Query.table ~alias:"I" retailer "Item";
        Query.table ~alias:"C" library "Catalog";
      ]
    ~where:[ Predicate.eq_attr "S.SID" "I.SID"; Predicate.eq_attr "I.Book" "C.Title" ]

let schemas () = [ ("S", store_schema); ("I", item_schema); ("C", catalog_schema) ]

let sync sc =
  Dyno_vs.Synchronizer.sync_one (mk ()) (registry ()) ~query:(view ())
    ~schemas:(schemas ()) sc

let test_rename_relation () =
  let r =
    sync (Schema_change.Rename_relation
            { source = library; old_name = "Catalog"; new_name = "Cat2" })
  in
  Alcotest.(check bool) "repointed" true
    (Query.mentions_relation r.Dyno_vs.Synchronizer.query ~source:library ~rel:"Cat2");
  Alcotest.(check bool) "select list untouched" true
    (List.length (Query.select r.Dyno_vs.Synchronizer.query) = 6)

let test_rename_relation_unrelated () =
  let r =
    sync (Schema_change.Rename_relation
            { source = retailer; old_name = "StoreItems"; new_name = "SI2" })
  in
  Alcotest.(check bool) "no effect" true
    (r.Dyno_vs.Synchronizer.actions = [ Dyno_vs.Synchronizer.No_effect ])

let test_rename_attribute () =
  let r =
    sync (Schema_change.Rename_attribute
            { source = retailer; rel = "Item"; old_name = "Price"; new_name = "Cost" })
  in
  let q = r.Dyno_vs.Synchronizer.query in
  (* select item expr follows the rename, output name (as_name) survives *)
  let item =
    List.find
      (fun (it : Query.select_item) -> String.equal it.Query.as_name "Price")
      (Query.select q)
  in
  Alcotest.(check string) "expr renamed" "Cost" (Attr.Qualified.attr item.Query.expr);
  (* believed schema updated *)
  let s = List.assoc "I" r.Dyno_vs.Synchronizer.schemas in
  Alcotest.(check bool) "schema tracked" true (Schema.mem s "Cost" && not (Schema.mem s "Price"))

let test_rename_join_attribute () =
  let r =
    sync (Schema_change.Rename_attribute
            { source = library; rel = "Catalog"; old_name = "Title"; new_name = "Name" })
  in
  let q = r.Dyno_vs.Synchronizer.query in
  Alcotest.(check bool) "join predicate rewritten" true
    (List.exists
       (fun (a : Predicate.atom) ->
         String.equal (Predicate.to_string [ a ]) "I.Book = C.Name")
       (Query.where q))

let test_add_attribute_tracked () =
  let r =
    sync (Schema_change.Add_attribute
            { source = library; rel = "Catalog"; attr = Attr.int "Year";
              default = Value.int 0 })
  in
  Alcotest.(check bool) "query untouched" true
    (Query.to_string r.Dyno_vs.Synchronizer.query = Query.to_string (view ()));
  let s = List.assoc "C" r.Dyno_vs.Synchronizer.schemas in
  Alcotest.(check bool) "believed schema grew" true (Schema.mem s "Year")

let test_drop_unused_attribute () =
  (* Item.SID is used (join) but Catalog has no unused column in the view…
     add one via believed schema: drop a column the view never reads *)
  let wide = Schema.add catalog_schema (Attr.int "Extra") in
  let r =
    Dyno_vs.Synchronizer.sync_one (mk ()) (registry ()) ~query:(view ())
      ~schemas:[ ("S", store_schema); ("I", item_schema); ("C", wide) ]
      (Schema_change.Drop_attribute { source = library; rel = "Catalog"; attr = "Extra" })
  in
  Alcotest.(check bool) "query untouched" true
    (Query.to_string r.Dyno_vs.Synchronizer.query = Query.to_string (view ()));
  Alcotest.(check bool) "schema narrowed" true
    (not (Schema.mem (List.assoc "C" r.Dyno_vs.Synchronizer.schemas) "Extra"))

let test_drop_dispensable () =
  let r =
    sync (Schema_change.Drop_attribute
            { source = library; rel = "Catalog"; attr = "Publisher" })
  in
  let q = r.Dyno_vs.Synchronizer.query in
  Alcotest.(check int) "select list shrank" 5 (List.length (Query.select q));
  Alcotest.(check bool) "Publisher gone" true
    (not
       (List.exists
          (fun (it : Query.select_item) -> String.equal it.Query.as_name "Publisher")
          (Query.select q)))

let test_drop_with_attr_replacement () =
  (* Query (4): Review replaced by ReaderDigest.Comments *)
  let r =
    sync (Schema_change.Drop_attribute
            { source = library; rel = "Catalog"; attr = "Review" })
  in
  let q = r.Dyno_vs.Synchronizer.query in
  Alcotest.(check bool) "ReaderDigest joined in" true
    (Query.mentions_relation q ~source:digest ~rel:"ReaderDigest");
  let item =
    List.find
      (fun (it : Query.select_item) -> String.equal it.Query.as_name "Review")
      (Query.select q)
  in
  Alcotest.(check string) "R.Comments AS Review" "Comments"
    (Attr.Qualified.attr item.Query.expr);
  Alcotest.(check bool) "join condition added" true
    (List.exists
       (fun (a : Predicate.atom) ->
         String.equal (Predicate.to_string [ a ]) "C.Title = R.Article")
       (Query.where q));
  (* believed schema for the new alias came from the replacement source *)
  Alcotest.(check bool) "R schema bound" true
    (List.mem_assoc "R" r.Dyno_vs.Synchronizer.schemas)

let test_drop_relation_with_collapse () =
  (* Query (3): Store & Item collapse into StoreItems; the SID join is
     internalized and disappears *)
  let r =
    sync (Schema_change.Drop_relation { source = retailer; name = "Store" })
  in
  let q = r.Dyno_vs.Synchronizer.query in
  Alcotest.(check int) "two relations left" 2 (List.length (Query.from q));
  Alcotest.(check bool) "StoreItems in" true
    (Query.mentions_relation q ~source:retailer ~rel:"StoreItems");
  Alcotest.(check bool) "SID join dropped" true
    (not
       (List.exists
          (fun (a : Predicate.atom) ->
            List.exists
              (fun (rf : Attr.Qualified.t) ->
                String.equal (Attr.Qualified.attr rf) "SID")
              (Predicate.refs [ a ]))
          (Query.where q)));
  Alcotest.(check bool) "book join survives" true
    (List.exists
       (fun (a : Predicate.atom) ->
         String.equal (Predicate.to_string [ a ]) "S.Book = C.Title")
       (Query.where q));
  (* dropping Item afterwards has no further effect *)
  let r2 =
    Dyno_vs.Synchronizer.sync_one (mk ()) (registry ())
      ~query:q ~schemas:r.Dyno_vs.Synchronizer.schemas
      (Schema_change.Drop_relation { source = retailer; name = "Item" })
  in
  Alcotest.(check bool) "second drop no-effect" true
    (r2.Dyno_vs.Synchronizer.actions = [ Dyno_vs.Synchronizer.No_effect ])

let test_drop_without_replacement_fails () =
  Alcotest.(check bool) "no rewriting -> Failed" true
    (match
       sync (Schema_change.Drop_attribute
               { source = retailer; rel = "Item"; attr = "Author" })
     with
    | _ -> false
    | exception Dyno_vs.Synchronizer.Failed _ -> true);
  Alcotest.(check bool) "dropped relation without replacement" true
    (match
       sync (Schema_change.Drop_relation { source = library; name = "Catalog" })
     with
    | _ -> false
    | exception Dyno_vs.Synchronizer.Failed _ -> true)

let test_drop_join_attr_dispensable_fails () =
  (* a dispensable attribute used in a join condition cannot be silently
     dropped *)
  let mk2 = mk () in
  Meta_knowledge.mark_dispensable mk2 ~source:library ~rel:"Catalog" ~attr:"Title";
  Alcotest.(check bool) "join attr drop fails" true
    (match
       Dyno_vs.Synchronizer.sync_one mk2 (registry ()) ~query:(view ())
         ~schemas:(schemas ())
         (Schema_change.Drop_attribute
            { source = library; rel = "Catalog"; attr = "Title" })
     with
    | _ -> false
    | exception Dyno_vs.Synchronizer.Failed _ -> true)

let test_sync_many_cyclic_pair () =
  (* the Section 3.5 pair: remapping + drop Review — combined rewriting
     must produce Query (5): StoreItems ⋈ Catalog ⋈ ReaderDigest *)
  let r =
    Dyno_vs.Synchronizer.sync_many (mk ()) (registry ()) ~query:(view ())
      ~schemas:(schemas ())
      [
        Schema_change.Drop_relation { source = retailer; name = "Store" };
        Schema_change.Drop_relation { source = retailer; name = "Item" };
        Schema_change.Drop_attribute { source = library; rel = "Catalog"; attr = "Review" };
      ]
  in
  let q = r.Dyno_vs.Synchronizer.query in
  Alcotest.(check int) "three relations" 3 (List.length (Query.from q));
  Alcotest.(check bool) "StoreItems" true
    (Query.mentions_relation q ~source:retailer ~rel:"StoreItems");
  Alcotest.(check bool) "ReaderDigest" true
    (Query.mentions_relation q ~source:digest ~rel:"ReaderDigest")

let () =
  Alcotest.run "vs"
    [
      ( "synchronizer",
        [
          Alcotest.test_case "rename relation" `Quick test_rename_relation;
          Alcotest.test_case "rename of unrelated relation" `Quick test_rename_relation_unrelated;
          Alcotest.test_case "rename attribute (select)" `Quick test_rename_attribute;
          Alcotest.test_case "rename attribute (join)" `Quick test_rename_join_attribute;
          Alcotest.test_case "add attribute tracked" `Quick test_add_attribute_tracked;
          Alcotest.test_case "drop unused attribute" `Quick test_drop_unused_attribute;
          Alcotest.test_case "drop dispensable attribute" `Quick test_drop_dispensable;
          Alcotest.test_case "drop with replacement (Query 4)" `Quick
            test_drop_with_attr_replacement;
          Alcotest.test_case "drop relation with collapse (Query 3)" `Quick
            test_drop_relation_with_collapse;
          Alcotest.test_case "unrewritable drops fail" `Quick test_drop_without_replacement_fails;
          Alcotest.test_case "dispensable join attribute fails" `Quick
            test_drop_join_attr_dispensable_fails;
          Alcotest.test_case "combined rewriting (Query 5)" `Quick test_sync_many_cyclic_pair;
        ] );
    ]
