(* Unit tests for Dyno_relational.Value: typing, comparison, coercion. *)

open Dyno_relational

let v_int = Value.int 42
let v_float = Value.float 3.5
let v_string = Value.string "abc"
let v_bool = Value.bool true

let test_type_of () =
  Alcotest.(check bool) "int" true (Value.type_of v_int = Some Value.Vtype.TInt);
  Alcotest.(check bool) "float" true (Value.type_of v_float = Some Value.Vtype.TFloat);
  Alcotest.(check bool) "string" true (Value.type_of v_string = Some Value.Vtype.TString);
  Alcotest.(check bool) "bool" true (Value.type_of v_bool = Some Value.Vtype.TBool);
  Alcotest.(check bool) "null" true (Value.type_of Value.null = None)

let test_has_type () =
  Alcotest.(check bool) "int has TInt" true (Value.has_type v_int Value.Vtype.TInt);
  Alcotest.(check bool) "int not TFloat" false (Value.has_type v_int Value.Vtype.TFloat);
  List.iter
    (fun ty ->
      Alcotest.(check bool)
        (Fmt.str "null has %a" Value.Vtype.pp ty)
        true (Value.has_type Value.null ty))
    Value.Vtype.all

let test_equal () =
  Alcotest.(check bool) "same int" true (Value.equal (Value.int 7) (Value.int 7));
  Alcotest.(check bool) "diff int" false (Value.equal (Value.int 7) (Value.int 8));
  Alcotest.(check bool) "int vs float" false (Value.equal (Value.int 7) (Value.float 7.0));
  Alcotest.(check bool) "null=null" true (Value.equal Value.null Value.null);
  Alcotest.(check bool) "null vs 0" false (Value.equal Value.null (Value.int 0))

let test_compare_total_order () =
  let values =
    [ Value.null; Value.bool false; Value.bool true; Value.int (-1);
      Value.int 5; Value.float 0.5; Value.string "a"; Value.string "b" ]
  in
  (* compare is antisymmetric on this set *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let c1 = Value.compare a b and c2 = Value.compare b a in
          Alcotest.(check bool)
            (Fmt.str "antisym %a %a" Value.pp a Value.pp b)
            true
            ((c1 = 0 && c2 = 0) || (c1 > 0 && c2 < 0) || (c1 < 0 && c2 > 0)))
        values)
    values;
  let sorted = List.sort Value.compare values in
  Alcotest.(check int) "sort stable length" (List.length values) (List.length sorted)

let test_hash_consistent_with_equal () =
  let pairs = [ (Value.int 3, Value.int 3); (Value.string "x", Value.string "x") ] in
  List.iter
    (fun (a, b) ->
      if Value.equal a b then
        Alcotest.(check int) "equal implies same hash" (Value.hash a) (Value.hash b))
    pairs

let test_coerce () =
  Alcotest.(check bool) "int->float" true
    (Value.coerce_to Value.Vtype.TFloat (Value.int 2) = Some (Value.float 2.0));
  Alcotest.(check bool) "int->string" true
    (match Value.coerce_to Value.Vtype.TString (Value.int 2) with
    | Some (Value.VString _) -> true
    | _ -> false);
  Alcotest.(check bool) "string->int fails" true
    (Value.coerce_to Value.Vtype.TInt (Value.string "2") = None);
  Alcotest.(check bool) "null -> anything" true
    (Value.coerce_to Value.Vtype.TInt Value.null = Some Value.null)

let test_pp () =
  Alcotest.(check string) "string quoted" "'abc'" (Value.to_string v_string);
  Alcotest.(check string) "null" "NULL" (Value.to_string Value.null);
  Alcotest.(check string) "int" "42" (Value.to_string v_int)

let () =
  Alcotest.run "value"
    [
      ( "value",
        [
          Alcotest.test_case "type_of" `Quick test_type_of;
          Alcotest.test_case "has_type (null universal)" `Quick test_has_type;
          Alcotest.test_case "equality" `Quick test_equal;
          Alcotest.test_case "total order" `Quick test_compare_total_order;
          Alcotest.test_case "hash/equal consistency" `Quick test_hash_consistent_with_equal;
          Alcotest.test_case "coercion" `Quick test_coerce;
          Alcotest.test_case "printing" `Quick test_pp;
        ] );
    ]
