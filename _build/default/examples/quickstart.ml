(* Quickstart: build the BookInfo world of the paper's Example 1, commit a
   few autonomous source updates, and let the Dyno scheduler maintain the
   materialized view.

     dune exec examples/quickstart.exe *)

open Dyno_relational

let () =
  Bookinfo.section "BookInfo: initial materialization";
  let w = Bookinfo.make () in
  Bookinfo.print_view w;

  Bookinfo.section "Autonomous source updates arrive";
  (* A new book enters the Library catalog (the ΔC of Example 1)… *)
  let dc =
    Update.insert ~source:Bookinfo.library ~rel:"Catalog"
      Bookinfo.catalog_schema
      Value.
        [
          string "Data Integration Guide";
          string "Adams";
          string "Engineering";
          string "Princeton";
          int 2003;
          string "thorough";
        ]
  in
  (* …a matching item appears at the retailer (the ΔI)… *)
  let di =
    Update.insert ~source:Bookinfo.retailer ~rel:"Item" Bookinfo.item_schema
      Value.[ int 10; string "Data Integration Guide"; string "Adams"; float 35.99 ]
  in
  (* …and one book is taken off the shelves. *)
  let del =
    Update.delete ~source:Bookinfo.retailer ~rel:"Item" Bookinfo.item_schema
      Value.[ int 20; string "Database Systems"; string "Ullman"; float 72.00 ]
  in
  List.iter (fun u -> Fmt.pr "%a@." Sql.pp_update u) [ dc; di; del ];
  Bookinfo.schedule w
    [
      (0.0, Dyno_sim.Timeline.Du dc);
      (0.0, Dyno_sim.Timeline.Du di);
      (0.0, Dyno_sim.Timeline.Du del);
    ];

  Bookinfo.section "Dyno maintains the view";
  let stats = Bookinfo.run w in
  Fmt.pr "%a@." Dyno_core.Stats.pp stats;
  Bookinfo.print_view w;

  Bookinfo.section "Consistency";
  (match Dyno_core.Consistency.convergent w.Bookinfo.engine w.Bookinfo.mv with
  | Ok true -> Fmt.pr "view converged to a full recompute: OK@."
  | Ok false -> Fmt.pr "view DIVERGED from a full recompute!@."
  | Error e -> Fmt.pr "cannot check: %s@." e);
  let index =
    List.map
      (fun m ->
        ( Dyno_view.Update_msg.id m,
          (Dyno_view.Update_msg.source m, Dyno_view.Update_msg.source_version m) ))
      (Dyno_view.Umq.history w.Bookinfo.umq)
  in
  Fmt.pr "strong consistency: %a@." Dyno_core.Consistency.pp_report
    (Dyno_core.Consistency.check_strong w.Bookinfo.engine w.Bookinfo.mv
       ~msg_index:index)
