(* The two maintenance anomalies of the paper's Example 1, reproduced and
   (by Dyno) corrected:

   (a) duplication anomaly — a concurrent Item insert contaminates the
       maintenance query of a Catalog insert; SWEEP compensation removes
       it.  We run the same race twice, with compensation off and on, and
       show the wrong (duplicated) versus correct view.

   (b) broken query anomaly — the XML-to-relational mapping is retuned
       (Figure 2): Store and Item collapse into StoreItems while a data
       update is still queued.  The maintenance query (2) breaks; Dyno's
       correction reorders/merges and view synchronization rewrites the
       view into Query (3).

     dune exec examples/bookinfo_anomalies.exe *)

open Dyno_relational

let dc () =
  Update.insert ~source:Bookinfo.library ~rel:"Catalog" Bookinfo.catalog_schema
    Value.
      [
        string "Data Integration Guide";
        string "Adams";
        string "Engineering";
        string "Princeton";
        int 2003;
        string "thorough";
      ]

let di () =
  Update.insert ~source:Bookinfo.retailer ~rel:"Item" Bookinfo.item_schema
    Value.[ int 10; string "Data Integration Guide"; string "Adams"; float 35.99 ]

(* Nonzero costs so that ΔI really commits while ΔC's maintenance query is
   in flight (Definition 2's interleaving). *)
let race_cost = { Dyno_sim.Cost_model.default with row_scale = 1.0 }

let count_book w =
  Relation.fold
    (fun tup c acc ->
      if Value.equal (Tuple.get tup 1) (Value.string "Data Integration Guide")
      then acc + c
      else acc)
    (Dyno_view.Mat_view.extent w.Bookinfo.mv)
    0

let run_race ~compensate =
  let w = Bookinfo.make ~cost:race_cost () in
  (* ΔC commits at t=0; ΔI commits 20 ms later — after ΔC's maintenance has
     started but before its probe of the Item table is answered (the probe
     round trip is 30 ms), which is exactly Definition 2's conflict. *)
  Bookinfo.schedule w
    [ (0.0, Dyno_sim.Timeline.Du (dc ())); (0.02, Dyno_sim.Timeline.Du (di ())) ];
  ignore (Bookinfo.run ~compensate w);
  w

let () =
  Bookinfo.section "Example 1.a - duplication anomaly (compensation OFF)";
  let w = run_race ~compensate:false in
  Fmt.pr
    "'Data Integration Guide' appears %d time(s) in the view - the \
     duplication anomaly:@.the probe answer already contained the \
     concurrent ΔI, and ΔI was then maintained again.@."
    (count_book w);

  Bookinfo.section "Example 1.a - SWEEP compensation ON (Dyno default)";
  let w = run_race ~compensate:true in
  Fmt.pr "'Data Integration Guide' appears %d time(s) in the view - correct.@."
    (count_book w);
  List.iter
    (fun (e : Dyno_sim.Trace.entry) ->
      if e.kind = Dyno_sim.Trace.Compensate then
        Fmt.pr "  trace: %a@." Dyno_sim.Trace.pp_entry e)
    (Dyno_sim.Trace.entries w.Bookinfo.trace);

  Bookinfo.section "Example 1.b - broken query anomaly";
  let w = Bookinfo.make ~cost:race_cost () in
  (* A data update is committed, and right after it the designer retunes
     the XML mapping: Store and Item are replaced by StoreItems.  The DU's
     maintenance query (2) probes Store/Item and breaks. *)
  Bookinfo.schedule w [ (0.0, Dyno_sim.Timeline.Du (dc ())) ];
  Bookinfo.schedule w (Bookinfo.remapping_events w 0.01);
  let stats = Bookinfo.run ~strategy:Dyno_core.Strategy.Optimistic w in
  Fmt.pr "broken queries detected in-exec: %d, aborts: %d, merges: %d@."
    stats.Dyno_core.Stats.broken_queries stats.Dyno_core.Stats.aborts
    stats.Dyno_core.Stats.merges;
  List.iter
    (fun (e : Dyno_sim.Trace.entry) ->
      match e.kind with
      | Dyno_sim.Trace.Broken_query | Dyno_sim.Trace.Abort
      | Dyno_sim.Trace.Correct | Dyno_sim.Trace.Merge | Dyno_sim.Trace.Sync ->
          Fmt.pr "  trace: %a@." Dyno_sim.Trace.pp_entry e
      | _ -> ())
    (Dyno_sim.Trace.entries w.Bookinfo.trace);

  Bookinfo.section "View after synchronization (the paper's Query (3))";
  Bookinfo.print_view w;
  match Dyno_core.Consistency.convergent w.Bookinfo.engine w.Bookinfo.mv with
  | Ok true -> Fmt.pr "@.view converged to a full recompute: OK@."
  | Ok false -> Fmt.pr "@.view DIVERGED from a full recompute!@."
  | Error e -> Fmt.pr "@.cannot check: %s@." e
