examples/bookinfo_anomalies.mli:
