examples/quickstart.ml: Bookinfo Dyno_core Dyno_relational Dyno_sim Dyno_view Fmt List Sql Update Value
