examples/cyclic_schema_changes.ml: Bookinfo Dyno_core Dyno_view Fmt List Mat_view Query_engine Umq View_def
