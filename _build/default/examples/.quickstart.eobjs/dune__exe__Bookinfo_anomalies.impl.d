examples/bookinfo_anomalies.ml: Bookinfo Dyno_core Dyno_relational Dyno_sim Dyno_view Fmt List Relation Tuple Update Value
