examples/grid_monitor.ml: Consistency Dyno_core Dyno_sim Dyno_workload Fmt Generator List Scenario Stats Strategy
