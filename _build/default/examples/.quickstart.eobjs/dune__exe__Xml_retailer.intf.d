examples/xml_retailer.mli:
