examples/quickstart.mli:
