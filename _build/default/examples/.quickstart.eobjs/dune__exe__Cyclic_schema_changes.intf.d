examples/cyclic_schema_changes.mli:
