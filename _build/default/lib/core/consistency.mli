(** Executable consistency criteria (Section 4.4).

    {b Convergence}: the final extent equals a re-evaluation of the
    current view definition over the sources' current states.

    {b Strong consistency} (Zhuge et al.): every committed view state
    equals the view definition at that commit evaluated over a valid
    source-state vector, advancing monotonically in source-commit order.
    The claimed vector is derived from the maintained message ids; states
    are reconstructed from the sources' version histories. *)

open Dyno_view

type mismatch = { commit_index : int; at : float; reason : string }

type report = { checked : int; skipped : int; mismatches : mismatch list }

val ok : report -> bool

val pp_report : Format.formatter -> report -> unit

val convergent : Query_engine.t -> Mat_view.t -> (bool, string) result
(** [Ok true] when the extent matches a recompute; [Error] when the view
    is undefined (nothing to check against). *)

val check_strong :
  Query_engine.t ->
  Mat_view.t ->
  msg_index:(int * (string * int)) list ->
  report
(** [check_strong w mv ~msg_index] replays every snapshot-tracked commit;
    [msg_index] maps a message id to [(source id, source version)] (see
    [Dyno_workload.Scenario.msg_index]).  Commits without snapshots are
    counted as skipped. *)
