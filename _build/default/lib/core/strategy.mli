(** Concurrency-handling strategies (Section 4.1.3, plus the merge-all
    strawman of Section 4.2). *)

type t =
  | Pessimistic
      (** pre-exec detection before each maintenance round (guarded by the
          schema-change flag) plus the in-exec broken-query backstop — the
          combination Dyno ships with (Section 4.3) *)
  | Optimistic
      (** in-exec detection only: maintain in arrival order, correct after
          a query breaks *)
  | Merge_all
      (** on any broken query, merge the whole UMQ into one batch *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val of_string : string -> t option

val all : t list
(** All strategies, for sweeps. *)
