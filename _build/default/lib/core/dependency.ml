(** Dependencies between maintenance processes (Section 3).

    [M(X) ← M(Y)] ("M(X) depends on M(Y)") constrains the processing
    order: Y must be maintained before X.  Two kinds:

    - {b Concurrent dependency} (Definition 3): Y's maintenance writes the
      view definition (Y is a schema change that touches metadata the view
      uses) while X's maintenance reads it.  The write must happen first,
      because the schema change has already invalidated the definition
      every other maintenance query is built from.
    - {b Semantic dependency} (Definition 4): X and Y committed at the same
      source, Y first; the view must reflect source states in commit order
      or it loses strong consistency (and deletions may precede their
      insertions). *)

open Dyno_relational
open Dyno_view

type kind = Concurrent | Semantic

let kind_to_string = function Concurrent -> "cd" | Semantic -> "sd"

(** An edge [dependent ← prerequisite] between node indices of a
    dependency graph (indices, not message ids: nodes may be merged
    batches). *)
type edge = { dependent : int; prerequisite : int; kind : kind }

let pp_edge ppf e =
  Fmt.pf ppf "M(%d) <-%s- M(%d)" e.dependent (kind_to_string e.kind)
    e.prerequisite

(** [sc_mentioned_in_view query schemas sc] — the paper's literal test
    (Section 4.1.1): does [sc] modify metadata (a relation or attribute)
    that is included in the view query?  Add-only changes and changes to
    unused attributes never are. *)
let sc_mentioned_in_view (query : Query.t)
    (schemas : (string * Schema.t) list) (sc : Schema_change.t) : bool =
  if not (Schema_change.destructive sc) then false
  else
    let source = Schema_change.source sc in
    match sc with
    | Schema_change.Rename_relation { old_name; _ } ->
        Query.mentions_relation query ~source ~rel:old_name
    | Schema_change.Drop_relation { name; _ } ->
        Query.mentions_relation query ~source ~rel:name
    | Schema_change.Rename_attribute { rel; old_name; _ } ->
        Query.mentions_relation query ~source ~rel
        && (try
              let owner = Dyno_vm.Maint_query.owner_of_schemas schemas in
              Query.mentions_attribute query ~source ~rel ~attr:old_name owner
            with _ -> true (* unresolvable view: be conservative *))
    | Schema_change.Drop_attribute { rel; attr; _ } ->
        Query.mentions_relation query ~source ~rel
        && (try
              let owner = Dyno_vm.Maint_query.owner_of_schemas schemas in
              Query.mentions_attribute query ~source ~rel ~attr owner
            with _ -> true)
    | Schema_change.Add_relation _ | Schema_change.Add_attribute _ -> false

(** [sc_conflicts_with_view query schemas sc] — the CD-edge test Dyno
    uses.  It extends {!sc_mentioned_in_view} to {e any} destructive change
    at a source the view reads: under chained unmaintained renames
    (R→X queued, then X→Y arrives) the second change's relation name no
    longer matches the view's stale reference even though it absolutely
    invalidates it, so a purely name-based test would miss the dependency
    and let maintenance livelock on broken queries.  Widening to source
    granularity is sound (extra safe orderings only) and cheap (schema
    changes on unrelated relations become no-op maintenance steps). *)
let sc_conflicts_with_view (query : Query.t)
    (schemas : (string * Schema.t) list) (sc : Schema_change.t) : bool =
  sc_mentioned_in_view query schemas sc
  || Schema_change.destructive sc
     && List.mem (Schema_change.source sc) (Query.sources query)

(** [message_edges query schemas msgs] computes all dependencies among a
    list of update messages (positions in the list are the node indices):

    - concurrent: for every message Y carrying a view-conflicting SC, every
      other message X gets [M(X) ← M(Y)] — X's r(VD) conflicts with Y's
      w(VD) (the paper draws the edge regardless of relative position; the
      safe/unsafe classification is positional, Definition 6);
    - semantic: adjacent commits at the same source get
      [M(later) ← M(earlier)] (one bucket per source, one scan: O(n)).

    Self-edges never arise; duplicate (dependent, prerequisite) pairs are
    kept at most once per kind. *)
let message_edges (query : Query.t) (schemas : (string * Schema.t) list)
    (msgs : Update_msg.t list) : edge list =
  let arr = Array.of_list msgs in
  let n = Array.length arr in
  let edges = ref [] in
  (* Concurrent dependencies: O(m·n). *)
  Array.iteri
    (fun y my ->
      match Update_msg.as_sc my with
      | Some sc when sc_conflicts_with_view query schemas sc ->
          for x = 0 to n - 1 do
            if x <> y then
              edges := { dependent = x; prerequisite = y; kind = Concurrent } :: !edges
          done
      | _ -> ())
    arr;
  (* Semantic dependencies: bucket per source, adjacent commits chained. *)
  let buckets : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let by_commit =
    List.sort
      (fun (_, a) (_, b) -> Int.compare (Update_msg.id a) (Update_msg.id b))
      (Array.to_list (Array.mapi (fun i m -> (i, m)) arr))
  in
  List.iter
    (fun (i, m) ->
      let src = Update_msg.source m in
      (match Hashtbl.find_opt buckets src with
      | Some prev ->
          edges := { dependent = i; prerequisite = prev; kind = Semantic } :: !edges
      | None -> ());
      Hashtbl.replace buckets src i)
    by_commit;
  List.rev !edges

(** Safety of a dependency under queue positions (Definition 6): the edge
    [M(X) ← M(Y)] is {e safe} iff Y is positioned before X.  [pos] maps a
    node index to its queue position. *)
let is_safe pos (e : edge) = pos e.prerequisite < pos e.dependent

(** Unsafe edges under the identity position map (list order = queue
    order). *)
let unsafe_edges edges = List.filter (fun e -> not (is_safe (fun i -> i) e)) edges
