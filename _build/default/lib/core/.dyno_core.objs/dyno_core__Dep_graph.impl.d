lib/core/dep_graph.ml: Array Dependency Dyno_relational Dyno_view Fmt Hashtbl Int List Option Query Schema Umq Update_msg
