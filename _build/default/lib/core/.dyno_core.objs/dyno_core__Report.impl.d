lib/core/report.ml: Dyno_sim Float Fmt Hashtbl List Option String Trace
