lib/core/dependency.mli: Dyno_relational Dyno_view Format Query Schema Schema_change Update_msg
