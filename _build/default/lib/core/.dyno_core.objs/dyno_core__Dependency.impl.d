lib/core/dependency.ml: Array Dyno_relational Dyno_view Dyno_vm Fmt Hashtbl Int List Query Schema Schema_change Update_msg
