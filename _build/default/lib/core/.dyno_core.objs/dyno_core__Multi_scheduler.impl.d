lib/core/multi_scheduler.ml: Correct Cost_model Dep_graph Dyno_sim Dyno_source Dyno_va Dyno_view Dyno_vm List Mat_view Query_engine Scheduler Stats Strategy Timeline Trace Umq Update_msg View_def
