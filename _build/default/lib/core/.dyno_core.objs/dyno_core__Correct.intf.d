lib/core/correct.mli: Dep_graph Dyno_view Umq
