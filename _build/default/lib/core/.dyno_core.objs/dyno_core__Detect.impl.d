lib/core/detect.ml: Dep_graph Dyno_view List Umq View_def
