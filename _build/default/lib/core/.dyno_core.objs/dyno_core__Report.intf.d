lib/core/report.mli: Dyno_sim Format Trace
