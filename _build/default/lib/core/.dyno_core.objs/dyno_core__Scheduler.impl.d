lib/core/scheduler.ml: Correct Cost_model Dep_graph Detect Dyno_sim Dyno_source Dyno_va Dyno_view Dyno_vm List Mat_view Query_engine Stats Strategy Trace Umq Update_msg View_def
