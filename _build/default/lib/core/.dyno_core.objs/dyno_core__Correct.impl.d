lib/core/correct.ml: Dep_graph Dyno_view Int List Umq Update_msg
