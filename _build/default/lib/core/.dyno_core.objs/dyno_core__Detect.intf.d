lib/core/detect.mli: Dep_graph Dyno_view Umq View_def
