lib/core/consistency.mli: Dyno_view Format Mat_view Query_engine
