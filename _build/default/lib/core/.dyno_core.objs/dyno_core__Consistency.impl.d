lib/core/consistency.ml: Catalog Dyno_relational Dyno_source Dyno_view Eval Fmt Hashtbl List Mat_view Option Query Query_engine Relation Stdlib View_def
