lib/core/dep_graph.mli: Dependency Dyno_relational Dyno_view Format Query Schema Umq
