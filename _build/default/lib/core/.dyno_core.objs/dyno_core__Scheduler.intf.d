lib/core/scheduler.mli: Dyno_source Dyno_view Mat_view Query_engine Stats Strategy
