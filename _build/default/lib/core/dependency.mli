(** Dependencies between maintenance processes (Section 3 of the paper).

    [M(X) ← M(Y)] ("M(X) depends on M(Y)") constrains the processing
    order: Y must be maintained before X.  Concurrent dependencies
    (Definition 3) arise from read/write conflicts on the view definition;
    semantic dependencies (Definition 4) from per-source commit order. *)

open Dyno_relational
open Dyno_view

type kind = Concurrent | Semantic

val kind_to_string : kind -> string

type edge = {
  dependent : int;  (** node index of M(X) *)
  prerequisite : int;  (** node index of M(Y), which must run first *)
  kind : kind;
}
(** An edge [dependent ← prerequisite] between node indices of a
    dependency graph. *)

val pp_edge : Format.formatter -> edge -> unit

val sc_mentioned_in_view :
  Query.t -> (string * Schema.t) list -> Schema_change.t -> bool
(** The paper's literal Section 4.1.1 test: does the schema change modify
    metadata (a relation or attribute) included in the view query? *)

val sc_conflicts_with_view :
  Query.t -> (string * Schema.t) list -> Schema_change.t -> bool
(** The CD-edge test Dyno uses: {!sc_mentioned_in_view} widened to any
    destructive change at a source the view reads, which stays sound under
    chains of unmaintained renames (see the implementation notes). *)

val message_edges :
  Query.t -> (string * Schema.t) list -> Update_msg.t list -> edge list
(** All dependencies among a flat list of update messages (positions in
    the list are node indices). *)

val is_safe : (int -> int) -> edge -> bool
(** [is_safe pos e] — Definition 6: the edge is safe iff the prerequisite
    is positioned before the dependent under [pos]. *)

val unsafe_edges : edge list -> edge list
(** Unsafe edges under the identity position map (list order = queue
    order). *)
