(** Concurrency-handling strategies (Section 4.1.3 and the merge-all
    strawman of Section 4.2). *)

type t =
  | Pessimistic
      (** pre-exec detection before each maintenance round (guarded by the
          schema-change flag) {e plus} the in-exec broken-query backstop —
          the combination Dyno ships with (Section 4.3) *)
  | Optimistic
      (** in-exec detection only: maintain in arrival order and correct
          after a query breaks *)
  | Merge_all
      (** the "simplistic solution" the paper argues against: on any broken
          query, merge the whole UMQ into one batch *)

let to_string = function
  | Pessimistic -> "pessimistic"
  | Optimistic -> "optimistic"
  | Merge_all -> "merge-all"

let pp ppf t = Fmt.string ppf (to_string t)

let of_string = function
  | "pessimistic" -> Some Pessimistic
  | "optimistic" -> Some Optimistic
  | "merge-all" | "merge_all" -> Some Merge_all
  | _ -> None

let all = [ Pessimistic; Optimistic; Merge_all ]
