(** Dependency detection (Section 4.1): the pre-exec pass over the UMQ,
    guarded by the schema-change flag (O(1) when only data updates are
    queued — the optimization behind Figure 8).  In-exec detection lives
    in {!Dyno_view.Query_engine.execute}: a failed probe {e is} the
    detection signal, by Theorem 1. *)

open Dyno_view

type outcome = {
  graph : Dep_graph.t option;  (** [None] when the flag fast path fired *)
  unsafe : int;  (** number of unsafe dependencies found *)
}

val pre_exec : View_def.t -> Umq.t -> outcome
(** The pre-exec detection pass.  Consumes the schema-change flag
    ([Test_If_True_Set_False], Figure 6 line 1): if no schema change
    arrived since the last pass, graph construction is skipped entirely. *)

val force : View_def.t -> Umq.t -> outcome
(** Unconditional graph construction (the in-exec correction path after a
    broken query).  Also consumes the flag — this pass subsumes a pending
    pre-exec pass. *)
