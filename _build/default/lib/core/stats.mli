(** Run statistics: the measurements behind every figure of Section 6.
    "Maintenance cost" is busy time (probes, refreshes, detection,
    correction, aborted work); "the maintenance cost includes the abort
    cost throughout our experiments" (the paper's footnote 4). *)

type t = {
  mutable busy : float;  (** total maintenance cost, s (includes aborts) *)
  mutable abort_cost : float;  (** work thrown away on broken queries, s *)
  mutable idle : float;  (** time spent waiting for updates, s *)
  mutable end_time : float;  (** simulated clock at completion *)
  mutable du_maintained : int;
  mutable sc_maintained : int;
  mutable batches : int;  (** merged batch nodes maintained *)
  mutable batch_updates : int;  (** messages inside those batches *)
  mutable irrelevant : int;  (** updates not touching the view *)
  mutable aborts : int;
  mutable broken_queries : int;
  mutable detections : int;  (** pre-exec detection passes (graph built) *)
  mutable corrections : int;  (** correction (reorder) passes *)
  mutable merges : int;  (** cycles collapsed *)
  mutable probes : int;  (** maintenance queries sent *)
  mutable compensations : int;  (** probe answers compensated *)
  mutable view_commits : int;
  mutable view_undefined : bool;
}

val create : unit -> t
val pp : Format.formatter -> t -> unit
