(** Run statistics: the measurements behind every figure of Section 6.

    The paper charts two quantities per run — total maintenance cost and
    abort cost, both in seconds — plus the event counters we use in tests
    (broken queries, corrections, merges).  "Maintenance cost" is busy
    time: work the view manager performed (probes, refreshes, detection,
    correction, aborted work); idle waiting for source commits is tracked
    separately.  "The maintenance cost includes the abort cost throughout
    our experiments" (footnote 4) — same here. *)

type t = {
  mutable busy : float;  (** total maintenance cost (includes aborts) *)
  mutable abort_cost : float;  (** work thrown away due to broken queries *)
  mutable idle : float;  (** time spent waiting for updates *)
  mutable end_time : float;  (** simulated clock at completion *)
  mutable du_maintained : int;
  mutable sc_maintained : int;
  mutable batches : int;  (** merged batch nodes maintained *)
  mutable batch_updates : int;  (** messages inside those batches *)
  mutable irrelevant : int;  (** updates not touching the view *)
  mutable aborts : int;
  mutable broken_queries : int;
  mutable detections : int;  (** pre-exec detection passes *)
  mutable corrections : int;  (** correction (reorder) passes *)
  mutable merges : int;  (** cycles collapsed *)
  mutable probes : int;  (** maintenance queries sent *)
  mutable compensations : int;  (** probe answers compensated *)
  mutable view_commits : int;
  mutable view_undefined : bool;
}

let create () =
  {
    busy = 0.0;
    abort_cost = 0.0;
    idle = 0.0;
    end_time = 0.0;
    du_maintained = 0;
    sc_maintained = 0;
    batches = 0;
    batch_updates = 0;
    irrelevant = 0;
    aborts = 0;
    broken_queries = 0;
    detections = 0;
    corrections = 0;
    merges = 0;
    probes = 0;
    compensations = 0;
    view_commits = 0;
    view_undefined = false;
  }

let pp ppf s =
  Fmt.pf ppf
    "@[<v>maintenance cost: %8.2f s (abort cost %6.2f s, idle %8.2f s, end \
     %8.2f s)@,\
     maintained: %d DU, %d SC, %d batch (%d msgs), %d irrelevant@,\
     aborts: %d (broken queries %d)@,\
     detection passes: %d, corrections: %d, cycles merged: %d@,\
     probes: %d (compensated %d), view commits: %d%s@]"
    s.busy s.abort_cost s.idle s.end_time s.du_maintained s.sc_maintained
    s.batches s.batch_updates s.irrelevant s.aborts s.broken_queries
    s.detections s.corrections s.merges s.probes s.compensations
    s.view_commits
    (if s.view_undefined then ", VIEW UNDEFINED" else "")
