(** Post-run reporting: cost breakdowns derived from an execution trace —
    per-kind maintenance durations (split by outcome), event counts, and
    broken queries by source. *)

open Dyno_sim

type episode_kind = Du_maint | Sc_maint | Batch_maint

val episode_kind_to_string : episode_kind -> string

type episode = {
  kind : episode_kind;
  started : float;
  duration : float;
  aborted : bool;
}

type summary = { count : int; total : float; mean : float; max : float }

val summarize : float list -> summary

type t = {
  episodes : episode list;
  event_counts : (Trace.kind * int) list;  (** non-zero kinds only *)
  broken_by_source : (string * int) list;
}

val of_trace : Trace.t -> t

val by_kind : t -> episode_kind -> aborted:bool -> float list
(** Durations of matching episodes. *)

val pp : Format.formatter -> t -> unit
