(** The paper's experimental schema (Section 6.1): six 4-attribute
    relations [R1…R6] over three source servers [DS1…DS3], 100k tuples
    each (physical size configurable), and the materialized view joining
    all six one-to-one on the key chain, selecting all 24 attributes. *)

open Dyno_relational

val n_relations : int
val sources : string list

val source_of_rel : int -> string
(** [R1,R2 ↦ DS1], [R3,R4 ↦ DS2], [R5,R6 ↦ DS3]. *)

val rel_name : int -> string
val key_attr : int -> string
val schema_of_rel : int -> Schema.t

val tuple_for : ?salt:int -> int -> int -> Value.t list
(** Deterministic tuple for key [k] in relation [i]; [salt] varies the
    payload so inserted rows differ from loaded ones. *)

val view_query : unit -> Query.t
val view_schemas : unit -> (string * Schema.t) list

val build_sources : rows:int -> Dyno_source.Registry.t
(** Create and load the three source servers. *)

val build_meta : unit -> Dyno_source.Meta_knowledge.t
(** Meta knowledge for the experiments: every non-key attribute is
    dispensable; join keys have no replacement (dropping one leaves the
    view undefined — exercised by dedicated tests, avoided by the
    experiment workloads). *)
