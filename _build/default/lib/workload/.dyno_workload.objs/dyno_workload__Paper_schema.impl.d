lib/workload/paper_schema.ml: Attr Dyno_relational Dyno_source Fmt List Predicate Query Schema Value
