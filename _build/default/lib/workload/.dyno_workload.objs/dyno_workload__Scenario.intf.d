lib/workload/scenario.mli: Dyno_core Dyno_relational Dyno_sim Dyno_source Dyno_view Mat_view Query_engine Relation Umq
