lib/workload/generator.mli: Dyno_sim Timeline
