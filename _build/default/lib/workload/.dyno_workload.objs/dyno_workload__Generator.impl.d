lib/workload/generator.ml: Array Attr Dyno_relational Dyno_sim Float Fmt List Paper_schema Rng Schema Schema_change String Timeline Tuple Update Value
