lib/workload/scenario.ml: Dyno_core Dyno_relational Dyno_sim Dyno_source Dyno_view Eval List Mat_view Paper_schema Query Query_engine Relation Schema Umq Update_msg View_def
