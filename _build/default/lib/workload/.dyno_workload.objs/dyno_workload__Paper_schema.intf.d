lib/workload/paper_schema.mli: Dyno_relational Dyno_source Query Schema Value
