(** The paper's experimental schema (Section 6.1).

    "Six relations evenly distributed over three different source servers
    with two relations each.  Each relation has four attributes and
    contains 100,000 tuples.  …  The view is defined as a one-to-one join
    among six relations and includes all twenty four attributes."

    Relations [R1]…[R6]; [R1,R2] at [DS1], [R3,R4] at [DS2], [R5,R6] at
    [DS3].  Each [Ri] has attributes [Ki] (the join key), [Ai] (int),
    [Bi] (string), [Ci] (float); the view joins [R1.K1 = R2.K2 = … = R6.K6]
    as a chain and selects all 24 attributes. *)

open Dyno_relational

let n_relations = 6

let source_of_rel i = Fmt.str "DS%d" (((i - 1) / 2) + 1)

let rel_name i = Fmt.str "R%d" i

let sources = [ "DS1"; "DS2"; "DS3" ]

let key_attr i = Fmt.str "K%d" i

let schema_of_rel i =
  Schema.of_list
    [
      Attr.int (key_attr i);
      Attr.int (Fmt.str "A%d" i);
      Attr.string (Fmt.str "B%d" i);
      Attr.float (Fmt.str "C%d" i);
    ]

(** Deterministic tuple for key [k] in relation [i] ([salt] varies the
    payload so inserted duplicates differ from loaded rows). *)
let tuple_for ?(salt = 0) i k : Value.t list =
  [
    Value.int k;
    Value.int ((k * 7) + i + (salt * 1000003));
    Value.string (Fmt.str "r%d-%d-%d" i k salt);
    Value.float (float_of_int ((k * i) + salt) /. 8.0);
  ]

(** The materialized view of the experiments: one-to-one join of all six
    relations on the key chain, all 24 attributes. *)
let view_query () : Query.t =
  Query.make ~name:"V"
    ~select:
      (List.concat_map
         (fun i ->
           List.map
             (fun a -> Query.item (Fmt.str "%s.%s" (rel_name i) a))
             [ key_attr i; Fmt.str "A%d" i; Fmt.str "B%d" i; Fmt.str "C%d" i ])
         (List.init n_relations (fun i -> i + 1)))
    ~from:
      (List.init n_relations (fun i ->
           let i = i + 1 in
           Query.table (source_of_rel i) (rel_name i)))
    ~where:
      (List.init (n_relations - 1) (fun i ->
           let i = i + 1 in
           Predicate.eq_attr
             (Fmt.str "%s.%s" (rel_name i) (key_attr i))
             (Fmt.str "%s.%s" (rel_name (i + 1)) (key_attr (i + 1)))))

let view_schemas () =
  List.init n_relations (fun i ->
      let i = i + 1 in
      (rel_name i, schema_of_rel i))

(** [build_sources ~rows] creates and loads the three source servers. *)
let build_sources ~rows : Dyno_source.Registry.t =
  let registry = Dyno_source.Registry.create () in
  List.iter
    (fun sid -> Dyno_source.Registry.register registry (Dyno_source.Data_source.create sid))
    sources;
  for i = 1 to n_relations do
    let s = Dyno_source.Registry.find registry (source_of_rel i) in
    Dyno_source.Data_source.add_relation s (rel_name i) (schema_of_rel i);
    Dyno_source.Data_source.load s (rel_name i)
      (List.init rows (fun k -> tuple_for i k))
  done;
  registry

(** Meta knowledge for the experiments: every non-key attribute is
    dispensable (EVE's evolution preference), so drop-attribute schema
    changes rewrite the view by shrinking its select list; join keys have
    no replacement — dropping one would leave the view undefined, which
    the workloads avoid, and dedicated tests exercise. *)
let build_meta () : Dyno_source.Meta_knowledge.t =
  let mk = Dyno_source.Meta_knowledge.create () in
  for i = 1 to n_relations do
    List.iter
      (fun a ->
        Dyno_source.Meta_knowledge.mark_dispensable mk
          ~source:(source_of_rel i) ~rel:(rel_name i) ~attr:a)
      [ Fmt.str "A%d" i; Fmt.str "B%d" i; Fmt.str "C%d" i ]
  done;
  mk
