(** The view definition: the critical shared resource of the paper.

    Concurrent dependencies (Definition 3) are read–write conflicts on this
    object: every maintenance process reads it (r(VD)) to construct its
    maintenance queries, and the maintenance of a schema change rewrites it
    (w(VD)).  The definition is versioned so that traces and tests can tell
    exactly which version a maintenance query was built from. *)

open Dyno_relational

type t = {
  mutable query : Query.t;
  mutable schemas : (string * Schema.t) list;
      (** the view manager's {e believed} schema of each FROM alias, as of
          the last synchronization — maintenance queries are built from
          this possibly-stale knowledge, which is exactly why they can
          break *)
  mutable version : int;
  mutable valid : bool;
      (** false when synchronization failed to find a rewriting — the view
          is undefined until a later change or operator intervention *)
  mutable reads : int;  (** r(VD) counter (introspection/tests) *)
  mutable writes : int;  (** w(VD) counter *)
}

let create ~schemas query =
  { query; schemas; version = 0; valid = true; reads = 0; writes = 0 }

let schemas vd = vd.schemas

let schema_of_alias vd alias = List.assoc_opt alias vd.schemas

(** [read vd] — the r(VD) step of Definition 1: returns the current
    definition together with the version it was read at. *)
let read vd =
  vd.reads <- vd.reads + 1;
  (vd.query, vd.version)

(** [peek vd] returns the definition without counting a maintenance read. *)
let peek vd = vd.query

let version vd = vd.version
let is_valid vd = vd.valid
let reads vd = vd.reads
let writes vd = vd.writes

(** [write vd ~schemas q] — the w(VD) step: installs a rewritten definition
    and the alias schemas it was derived for.  This is the in-memory
    rewrite of Definition 1's footnote; the persistent rewrite happens
    together with w(MV). *)
let write vd ~schemas q =
  vd.query <- q;
  vd.schemas <- schemas;
  vd.version <- vd.version + 1;
  vd.valid <- true;
  vd.writes <- vd.writes + 1

type saved = Query.t * (string * Schema.t) list * bool

(** [save vd] captures the current definition state for rollback. *)
let save vd : saved = (vd.query, vd.schemas, vd.valid)

(** [restore vd saved] rolls the in-memory definition back to a {!save}d
    state — used when a maintenance process aborts after its w(VD) but
    before w(MV): per Definition 1's footnote the physical rewrite only
    happens at w(MV), so an aborted process must leave no trace. *)
let restore vd (query, schemas, valid) =
  vd.query <- query;
  vd.schemas <- schemas;
  vd.valid <- valid;
  vd.version <- vd.version + 1

(** [invalidate vd] marks the view undefined (no rewriting exists). *)
let invalidate vd =
  vd.version <- vd.version + 1;
  vd.valid <- false;
  vd.writes <- vd.writes + 1

let name vd = Query.name vd.query

let pp ppf vd =
  Fmt.pf ppf "@[<v>-- view %s (version %d%s)@,%a@]" (name vd) vd.version
    (if vd.valid then "" else ", INVALID")
    Query.pp vd.query
