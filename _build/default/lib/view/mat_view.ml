(** The materialized view: extent storage plus a commit log.

    Every successful maintenance process ends with w(MV) c(MV): the extent
    is updated and a commit record appended.  When [track_snapshots] is on
    (tests, consistency checking), each commit also stores a full copy of
    the extent so that strong consistency can be verified offline. *)

open Dyno_relational

type commit = {
  at : float;  (** simulated commit time *)
  def_version : int;  (** view-definition version the commit was built on *)
  maintained : int list;  (** update-message ids integrated by this commit *)
  snapshot : Relation.t option;
  def_snapshot : (Query.t * (string * Schema.t) list) option;
      (** definition + believed schemas at commit time (when tracking) *)
}

type t = {
  def : View_def.t;
  mutable extent : Relation.t;
  mutable commits : commit list;  (** newest first *)
  track_snapshots : bool;
}

let create ?(track_snapshots = false) def extent =
  { def; extent; commits = []; track_snapshots }

let def v = v.def
let extent v = v.extent
let cardinality v = Relation.cardinality v.extent

let commit_count v = List.length v.commits

(** Commits in chronological order. *)
let commits v = List.rev v.commits

let record_commit v ~at ~maintained =
  v.commits <-
    {
      at;
      def_version = View_def.version v.def;
      maintained;
      snapshot = (if v.track_snapshots then Some (Relation.copy v.extent) else None);
      def_snapshot =
        (if v.track_snapshots then
           Some (View_def.peek v.def, View_def.schemas v.def)
         else None);
    }
    :: v.commits

(** [refresh v ~at ~maintained delta] applies a signed delta to the extent
    and commits — the w(MV) c(MV) of a VM process.
    @raise Invalid_argument if the delta drives a multiplicity negative
    (a maintenance bug; tests rely on this tripwire). *)
let refresh v ~at ~maintained delta =
  v.extent <- Relation.apply_delta v.extent delta;
  record_commit v ~at ~maintained

(** [replace v ~at ~maintained extent] installs a whole new extent — used
    by view adaptation when the definition itself changed shape. *)
let replace v ~at ~maintained extent =
  v.extent <- extent;
  record_commit v ~at ~maintained

let pp ppf v =
  Fmt.pf ppf "@[<v>%a@,extent: %d tuples, %d commits@]" View_def.pp v.def
    (Relation.cardinality v.extent)
    (commit_count v)
