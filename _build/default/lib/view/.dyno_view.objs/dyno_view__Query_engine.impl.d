lib/view/query_engine.ml: Clock Cost_model Dyno_relational Dyno_sim Dyno_source Float List Query Relation String Timeline Trace Umq Update_msg
