lib/view/view_def.ml: Dyno_relational Fmt List Query Schema
