lib/view/view_def.mli: Dyno_relational Format Query Schema
