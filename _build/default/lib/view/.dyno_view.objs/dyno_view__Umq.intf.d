lib/view/umq.mli: Dyno_relational Format Update_msg
