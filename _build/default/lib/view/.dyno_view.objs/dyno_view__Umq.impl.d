lib/view/umq.ml: Fmt Hashtbl List Option Update_msg
