lib/view/update_msg.ml: Dyno_relational Dyno_sim Fmt Schema_change Update
