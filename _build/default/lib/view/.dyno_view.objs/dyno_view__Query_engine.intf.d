lib/view/query_engine.mli: Clock Cost_model Dyno_relational Dyno_sim Dyno_source Query Relation Timeline Trace Umq Update Update_msg
