lib/view/mat_view.ml: Dyno_relational Fmt List Query Relation Schema View_def
