lib/view/update_msg.mli: Dyno_relational Dyno_sim Format Schema_change Update
