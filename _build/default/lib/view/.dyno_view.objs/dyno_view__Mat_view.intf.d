lib/view/mat_view.mli: Dyno_relational Format Query Relation Schema View_def
