(** The view definition: the critical shared resource of the paper.
    Concurrent dependencies (Definition 3) are read–write conflicts on
    this object: every maintenance process reads it (r(VD)) to construct
    its queries, and the maintenance of a schema change rewrites it
    (w(VD)). *)

open Dyno_relational

type t

val create : schemas:(string * Schema.t) list -> Query.t -> t
(** [schemas] is the view manager's {e believed} schema of each FROM
    alias — maintenance queries are built from this possibly-stale
    knowledge, which is exactly why they can break. *)

val read : t -> Query.t * int
(** The r(VD) step: the current definition and the version it was read
    at. *)

val peek : t -> Query.t
(** Read without counting a maintenance read. *)

val schemas : t -> (string * Schema.t) list
val schema_of_alias : t -> string -> Schema.t option
val version : t -> int
val is_valid : t -> bool
val reads : t -> int
val writes : t -> int

val write : t -> schemas:(string * Schema.t) list -> Query.t -> unit
(** The w(VD) step: install a rewritten definition and the believed
    schemas it was derived for (in-memory; the physical rewrite happens
    together with w(MV) — the paper's footnote 1). *)

type saved

val save : t -> saved
val restore : t -> saved -> unit
(** Roll back to a saved state — an aborted maintenance process must leave
    no trace of its w(VD). *)

val invalidate : t -> unit
(** Mark the view undefined (no rewriting exists). *)

val name : t -> string
val pp : Format.formatter -> t -> unit
