(** Update messages: what the wrappers deliver into the UMQ.  Each wraps
    one autonomous source commit together with the commit time and the
    source version it produced; the id (assigned at enqueue) identifies
    the corresponding maintenance process in the dependency graph. *)

open Dyno_relational

type payload = Du of Update.t | Sc of Schema_change.t

type t

val make : id:int -> commit_time:float -> source_version:int -> payload -> t
val id : t -> int
val commit_time : t -> float
val source_version : t -> int
val payload : t -> payload
val source : t -> string

val rel : t -> string
(** Relation targeted, under its name at commit time. *)

val is_sc : t -> bool
val is_du : t -> bool
val as_du : t -> Update.t option
val as_sc : t -> Schema_change.t option

val of_event :
  id:int -> commit_time:float -> source_version:int -> Dyno_sim.Timeline.event -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
