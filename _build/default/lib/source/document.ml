(** A miniature semi-structured (XML-like) document store.

    The paper's Figure 1 integrates a {e Retailer} whose native format is
    XML; a wrapper maps it into relational tables.  This module is that
    native side: immutable element trees with tags and text, plus the
    handful of traversals the {!Xml_wrapper} needs (path selection,
    ancestor context). *)

type node = {
  tag : string;
  text : string option;  (** leaf text content *)
  children : node list;
}

(** Element constructors. *)
let elem tag children = { tag; text = None; children }

let leaf tag text = { tag; text = Some text; children = [] }

let tag n = n.tag
let children n = n.children

(** [text_of n] is the text directly carried by [n] ([""] when none). *)
let text_of n = Option.value ~default:"" n.text

(** [child n tag] — first child with the tag. *)
let child n t = List.find_opt (fun c -> String.equal c.tag t) n.children

(** [child_text n tag] — text of the first child with the tag. *)
let child_text n t = Option.map text_of (child n t)

(** [select_with_context path roots] returns every node reached by
    following [path] (a list of tags): the first component matches the
    roots themselves, subsequent components match children.  Each result
    carries its ancestor chain (outermost first, excluding the node
    itself), so column extraction can look upwards ("the Store name this
    Book belongs to").  Document order. *)
let select_with_context (path : string list) (roots : node list) :
    (node list * node) list =
  let rec descend ctx node = function
    | [] -> [ (List.rev ctx, node) ]
    | t :: rest ->
        List.concat_map
          (fun c ->
            if String.equal c.tag t then descend (node :: ctx) c rest else [])
          node.children
  in
  match path with
  | [] -> []
  | t :: rest ->
      List.concat_map
        (fun r -> if String.equal r.tag t then descend [] r rest else [])
        roots

(** [select path roots] — {!select_with_context} without the contexts. *)
let select path roots = List.map snd (select_with_context path roots)

let rec pp ppf n =
  match (n.text, n.children) with
  | Some t, [] -> Fmt.pf ppf "<%s>%s</%s>" n.tag t n.tag
  | _, cs ->
      Fmt.pf ppf "@[<v2><%s>@,%a@]@,</%s>" n.tag
        Fmt.(list ~sep:cut pp)
        cs n.tag

let to_string n = Fmt.str "%a" pp n

(** Structural equality. *)
let rec equal a b =
  String.equal a.tag b.tag
  && Option.equal String.equal a.text b.text
  && List.equal equal a.children b.children
