(** The remote source space: a registry of autonomous data sources that
    can join and leave dynamically (the paper's Section 2).  How the view
    manager's query engine locates the server that must answer a
    maintenance query. *)

type t

exception Unknown_source of string

val create : unit -> t
val of_list : Data_source.t list -> t

val register : t -> Data_source.t -> unit
(** Adds a source; replaces any previous source with the same id (a source
    re-joining). *)

val unregister : t -> string -> unit

val find : t -> string -> Data_source.t
(** @raise Unknown_source when absent. *)

val find_opt : t -> string -> Data_source.t option
val mem : t -> string -> bool
val ids : t -> string list
val sources : t -> Data_source.t list

val commit : t -> time:float -> Dyno_sim.Timeline.event -> Data_source.t * int
(** Route a timeline event to its source and commit it there; returns the
    source and its new version. *)

val pp : Format.formatter -> t -> unit
