lib/source/registry.mli: Data_source Dyno_sim Format
