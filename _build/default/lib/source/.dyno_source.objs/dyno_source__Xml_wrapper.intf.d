lib/source/xml_wrapper.mli: Data_source Document Dyno_relational Dyno_sim Relation Schema
