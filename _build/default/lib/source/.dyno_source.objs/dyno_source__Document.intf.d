lib/source/document.mli: Format
