lib/source/data_source.mli: Catalog Dyno_relational Dyno_sim Format Hashtbl Query Relation Schema Schema_change Update Value
