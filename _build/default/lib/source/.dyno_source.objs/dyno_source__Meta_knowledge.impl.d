lib/source/meta_knowledge.ml: Fmt List String
