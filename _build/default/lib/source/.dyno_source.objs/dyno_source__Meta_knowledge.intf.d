lib/source/meta_knowledge.mli: Format
