lib/source/registry.ml: Data_source Dyno_sim Fmt List String
