lib/source/xml_wrapper.ml: Array Attr Data_source Document Dyno_relational Dyno_sim Fmt Hashtbl List Relation Schema Schema_change String Tuple Update Value
