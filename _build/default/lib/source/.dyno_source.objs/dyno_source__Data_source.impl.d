lib/source/data_source.ml: Attr Catalog Dyno_relational Dyno_sim Eval Fmt Hashtbl List Option Printexc Query Relation Schema Schema_change String Tuple Update
