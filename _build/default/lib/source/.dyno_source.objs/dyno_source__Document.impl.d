lib/source/document.ml: Fmt List Option String
