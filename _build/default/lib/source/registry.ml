(** The remote source space: a registry of autonomous data sources.

    Sources can join and leave dynamically (Section 2).  The registry is
    how the view manager's query engine locates the server that must answer
    a maintenance query. *)

type t = { mutable sources : (string * Data_source.t) list }

exception Unknown_source of string

let create () = { sources = [] }

let of_list sources =
  { sources = List.map (fun s -> (Data_source.id s, s)) sources }

(** [register t s] adds a source; replaces any previous source with the
    same id (a source re-joining). *)
let register t s =
  let id = Data_source.id s in
  t.sources <-
    (id, s) :: List.filter (fun (i, _) -> not (String.equal i id)) t.sources

(** [unregister t id] removes a source (it left the grid). *)
let unregister t id =
  t.sources <- List.filter (fun (i, _) -> not (String.equal i id)) t.sources

let find t id =
  match List.assoc_opt id t.sources with
  | Some s -> s
  | None -> raise (Unknown_source id)

let find_opt t id = List.assoc_opt id t.sources

let mem t id = List.mem_assoc id t.sources

let ids t = List.rev_map fst t.sources

let sources t = List.rev_map snd t.sources

(** [commit t ~time ev] routes a timeline event to its source and commits
    it there.  Returns (source, new version). *)
let commit t ~time (ev : Dyno_sim.Timeline.event) =
  let s = find t (Dyno_sim.Timeline.event_source ev) in
  let v = Data_source.commit s ~time ev in
  (s, v)

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]"
    Fmt.(list ~sep:cut Data_source.pp)
    (List.rev_map snd t.sources)
