(** The XML-to-relational wrapper of the paper's Figures 1–2.

    A {!mapping} says how an element forest materializes into relational
    tables: each {!rule} selects row nodes by path and extracts columns
    from the node or its ancestors.  Two mappings of the same documents
    are the paper's two designs:

    - Figure 1: [Store(SID, Store)] + [Item(SID, Book, Author, Price)]
      (two tables linked by a synthetic store id);
    - Figure 2: the retuned single table
      [StoreItems(Store, Book, Author, Price)].

    Beyond extraction, the wrapper {e translates document-level operations
    into the source-update events} the rest of the system consumes:

    - {!diff_events} turns a document change (books added/removed, a store
      appearing) into the data updates each mapped table needs;
    - {!remap_events} turns a mapping retuning into the schema-change
      sequence of Example 1.b — add the new tables (populated), drop the
      old ones — which is exactly what breaks in-flight maintenance
      queries and exercises Dyno. *)

open Dyno_relational

(** Where a column's value comes from, relative to a row node. *)
type column_src =
  | Text of string list
      (** text of the node reached by a relative path ([[]] = the row
          node's own text) *)
  | Ancestor_text of string * string list
      (** climb to the nearest ancestor with the given tag, then follow
          the relative path *)
  | Ancestor_index of string
      (** 1-based index (document order) of the nearest ancestor with the
          given tag among all nodes of that tag — the synthetic id the
          Figure 1 mapping uses for [SID] *)
  | Row_index
      (** 1-based index of the row node itself among selected rows *)

type rule = {
  rel : string;  (** target relation name *)
  schema : Schema.t;
  row_path : string list;  (** path selecting row nodes *)
  columns : (string * column_src) list;  (** per-attribute extraction *)
}

type mapping = rule list

exception Extraction_error of string

let err fmt = Fmt.kstr (fun s -> raise (Extraction_error s)) fmt

(* index (1-based) of each node with [tag] in document order *)
let tag_indices tag roots =
  let nodes = ref [] in
  let rec walk n =
    if String.equal (Document.tag n) tag then nodes := n :: !nodes;
    List.iter walk (Document.children n)
  in
  List.iter walk roots;
  List.mapi (fun i n -> (n, i + 1)) (List.rev !nodes)

let value_for_type ty (s : string) : Value.t =
  match ty with
  | Value.Vtype.TString -> Value.string s
  | Value.Vtype.TInt -> (
      match int_of_string_opt (String.trim s) with
      | Some i -> Value.int i
      | None -> err "cannot read %S as INT" s)
  | Value.Vtype.TFloat -> (
      match float_of_string_opt (String.trim s) with
      | Some f -> Value.float f
      | None -> err "cannot read %S as FLOAT" s)
  | Value.Vtype.TBool -> (
      match String.lowercase_ascii (String.trim s) with
      | "true" | "1" -> Value.bool true
      | "false" | "0" -> Value.bool false
      | _ -> err "cannot read %S as BOOLEAN" s)

(** [extract_rule rule roots] materializes one relation from the forest. *)
let extract_rule (rule : rule) (roots : Document.node list) : Relation.t =
  let out = Relation.create rule.schema in
  let rows = Document.select_with_context rule.row_path roots in
  let indices_cache : (string, (Document.node * int) list) Hashtbl.t =
    Hashtbl.create 4
  in
  let indices tag =
    match Hashtbl.find_opt indices_cache tag with
    | Some l -> l
    | None ->
        let l = tag_indices tag roots in
        Hashtbl.add indices_cache tag l;
        l
  in
  List.iteri
    (fun row_i (ctx, node) ->
      let ancestor tag =
        (* the row node itself counts as its own "ancestor" for its tag *)
        let chain = List.rev (node :: List.rev ctx) in
        match
          List.find_opt
            (fun a -> String.equal (Document.tag a) tag)
            (List.rev chain)
        with
        | Some a -> a
        | None -> err "row at %s has no ancestor <%s>" rule.rel tag
      in
      let rec follow n = function
        | [] -> Document.text_of n
        | t :: rest -> (
            match Document.child n t with
            | Some c -> follow c rest
            | None -> err "missing <%s> under <%s>" t (Document.tag n))
      in
      let extract = function
        | Text rel_path -> `S (follow node rel_path)
        | Ancestor_text (tag, rel_path) -> `S (follow (ancestor tag) rel_path)
        | Ancestor_index tag -> (
            let a = ancestor tag in
            match List.assq_opt a (indices tag) with
            | Some i -> `I i
            | None -> err "ancestor <%s> not indexed" tag)
        | Row_index -> `I (row_i + 1)
      in
      let values =
        List.map
          (fun attr ->
            let src =
              match List.assoc_opt (Attr.name attr) rule.columns with
              | Some src -> src
              | None -> err "rule %s has no column %s" rule.rel (Attr.name attr)
            in
            match extract src with
            | `S s -> value_for_type (Attr.ty attr) s
            | `I i -> (
                match Attr.ty attr with
                | Value.Vtype.TInt -> Value.int i
                | ty -> value_for_type ty (string_of_int i)))
          (Schema.attrs rule.schema)
      in
      Relation.insert out (Tuple.of_list values))
    rows;
  out

(** [extract mapping roots] materializes every mapped relation. *)
let extract (mapping : mapping) (roots : Document.node list) :
    (string * Relation.t) list =
  List.map (fun r -> (r.rel, extract_rule r roots)) mapping

(** [install mapping source roots] creates and loads the mapped relations
    in a fresh relational facade of the documents (initial wiring; not
    versioned). *)
let install (mapping : mapping) (src : Data_source.t)
    (roots : Document.node list) : unit =
  List.iter
    (fun rule ->
      Data_source.add_relation src rule.rel rule.schema;
      let r = extract_rule rule roots in
      Data_source.load_counted src rule.rel
        (List.map (fun (t, c) -> (Array.to_list t, c)) (Relation.to_counted r)))
    mapping

(** [diff_events ~source mapping ~old_roots ~new_roots ~time] — the
    autonomous commits a document change induces on the mapped tables:
    one data update per relation whose extracted extent changed. *)
let diff_events ~(source : string) (mapping : mapping)
    ~(old_roots : Document.node list) ~(new_roots : Document.node list)
    ~(time : float) : (float * Dyno_sim.Timeline.event) list =
  List.filter_map
    (fun rule ->
      let before = extract_rule rule old_roots in
      let after = extract_rule rule new_roots in
      let delta = Relation.diff after before in
      if Relation.is_empty delta then None
      else
        Some
          ( time,
            Dyno_sim.Timeline.Du (Update.make ~source ~rel:rule.rel delta) ))
    mapping

(** [remap_events ~source ~old_mapping ~new_mapping ~roots ~time] — the
    schema-change sequence of a mapping retuning (Example 1.b): new
    relations are added and populated, relations no longer mapped are
    dropped; relations present in both get a data diff.  All events share
    [time]: the designer commits the retuning atomically at the source. *)
let remap_events ~(source : string) ~(old_mapping : mapping)
    ~(new_mapping : mapping) ~(roots : Document.node list) ~(time : float) :
    (float * Dyno_sim.Timeline.event) list =
  let old_rels = List.map (fun r -> r.rel) old_mapping in
  let new_rels = List.map (fun r -> r.rel) new_mapping in
  let added =
    List.filter (fun r -> not (List.mem r.rel old_rels)) new_mapping
  in
  let dropped =
    List.filter (fun r -> not (List.mem r.rel new_rels)) old_mapping
  in
  let kept = List.filter (fun r -> List.mem r.rel old_rels) new_mapping in
  List.concat_map
    (fun rule ->
      let populate = extract_rule rule roots in
      [
        ( time,
          Dyno_sim.Timeline.Sc
            (Schema_change.Add_relation
               { source; name = rule.rel; schema = rule.schema }) );
      ]
      @
      if Relation.is_empty populate then []
      else
        [
          ( time,
            Dyno_sim.Timeline.Du (Update.make ~source ~rel:rule.rel populate) );
        ])
    added
  @ List.concat_map
      (fun (rule : rule) ->
        (* same relation, possibly different extraction: emit a diff *)
        let old_rule = List.find (fun r -> r.rel = rule.rel) old_mapping in
        let delta =
          Relation.diff (extract_rule rule roots) (extract_rule old_rule roots)
        in
        if Relation.is_empty delta then []
        else
          [
            ( time,
              Dyno_sim.Timeline.Du (Update.make ~source ~rel:rule.rel delta) );
          ])
      kept
  @ List.map
      (fun (rule : rule) ->
        ( time,
          Dyno_sim.Timeline.Sc
            (Schema_change.Drop_relation { source; name = rule.rel }) ))
      dropped

(* ------------------------------------------------------------------ *)
(* The paper's two Retailer mappings (Figures 1 and 2)                 *)
(* ------------------------------------------------------------------ *)

(** Figure 1: [Store(SID, Store)] ⋈ [Item(SID, Book, Author, Price)]. *)
let retailer_two_tables : mapping =
  [
    {
      rel = "Store";
      schema = Schema.of_list [ Attr.int "SID"; Attr.string "Store" ];
      row_path = [ "Store" ];
      columns =
        [ ("SID", Ancestor_index "Store"); ("Store", Text [ "Name" ]) ];
    };
    {
      rel = "Item";
      schema =
        Schema.of_list
          [ Attr.int "SID"; Attr.string "Book"; Attr.string "Author";
            Attr.float "Price" ];
      row_path = [ "Store"; "Book" ];
      columns =
        [
          ("SID", Ancestor_index "Store");
          ("Book", Text [ "Title" ]);
          ("Author", Text [ "Author" ]);
          ("Price", Text [ "Price" ]);
        ];
    };
  ]

(** Figure 2: the retuned single table [StoreItems]. *)
let retailer_single_table : mapping =
  [
    {
      rel = "StoreItems";
      schema =
        Schema.of_list
          [ Attr.string "Store"; Attr.string "Book"; Attr.string "Author";
            Attr.float "Price" ];
      row_path = [ "Store"; "Book" ];
      columns =
        [
          ("Store", Ancestor_text ("Store", [ "Name" ]));
          ("Book", Text [ "Title" ]);
          ("Author", Text [ "Author" ]);
          ("Price", Text [ "Price" ]);
        ];
    };
  ]

(** A Retailer document forest matching the paper's Figure 1 sketch. *)
let store_doc ~name ~books : Document.node =
  Document.elem "Store"
    (Document.leaf "Name" name
    :: List.map
         (fun (title, author, price) ->
           Document.elem "Book"
             [
               Document.leaf "Title" title;
               Document.leaf "Author" author;
               Document.leaf "Price" (string_of_float price);
             ])
         books)
