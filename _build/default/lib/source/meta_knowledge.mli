(** Meta knowledge for view synchronization (the EVE model): where to find
    {e replacements} when a source drops a relation or attribute the view
    uses — alternative relations/attributes linked through join
    conditions — plus the dispensable-attribute evolution preference.
    Extracted by the "intelligent wrappers" of the paper's Section 2. *)

type attr_replacement = {
  new_source : string;
  new_rel : string;
  new_attr : string;
  join_on : (string * string) list;
      (** (attribute of the view's surviving relations, attribute of
          [new_rel]) equality pairs linking the replacement in *)
  via_alias : string option;
      (** bind the replacement under this alias; default: fresh *)
}

type rel_replacement = {
  repl_source : string;
  repl_rel : string;
  covers : (string * (string * string) list) list;
      (** every relation this replacement subsumes, with its attribute
          mapping.  A multi-entry list collapses several view aliases into
          one (the paper's StoreItems replacing Store ⋈ Item); unmapped
          attributes are joins the replacement internalizes. *)
}

type t

val create : unit -> t

val add_attr_replacement :
  t -> source:string -> rel:string -> attr:string -> attr_replacement -> unit

val add_rel_replacement : t -> source:string -> rel:string -> rel_replacement -> unit

val mark_dispensable : t -> source:string -> rel:string -> attr:string -> unit
(** Allow the view to silently lose this attribute. *)

val attr_replacement :
  t -> source:string -> rel:string -> attr:string -> attr_replacement option

val rel_replacement : t -> source:string -> rel:string -> rel_replacement option
(** Finds a replacement registered for the relation itself or one whose
    [covers] list subsumes it. *)

val is_dispensable : t -> source:string -> rel:string -> attr:string -> bool

(** {1 Name maintenance and rollback} *)

val rename_relation : t -> source:string -> old_rel:string -> new_rel:string -> unit
(** Re-key every entry mentioning the relation — the wrappers keep meta
    knowledge aligned with the sources' current names. *)

val rename_attribute :
  t -> source:string -> rel:string -> old_attr:string -> new_attr:string -> unit

type snapshot

val save : t -> snapshot
val restore : t -> snapshot -> unit
(** The synchronizer re-keys entries as it propagates renames; an aborted
    maintenance process must roll that back together with the view
    definition. *)

val pp : Format.formatter -> t -> unit
