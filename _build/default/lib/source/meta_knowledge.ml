(** Meta knowledge for view synchronization (the EVE model [9]).

    When a source drops a relation or an attribute that a view uses, view
    synchronization tries to rewrite the view using {e replacements}:
    alternative relations/attributes at (possibly other) sources that carry
    the same information, linked through join conditions.  This module is
    the registry of such information — extracted by the intelligent
    wrappers of Section 2, which report "not only raw data, but also
    metadata information, such as … relationships with other sources".

    The paper's running example registers [ReaderDigest.Comments] as a
    replacement for [Catalog.Review] (joining [Catalog.Title =
    ReaderDigest.Article], Query (4)), and [StoreItems] as a replacement
    for both [Store] and [Item]. *)


type attr_replacement = {
  new_source : string;
  new_rel : string;
  new_attr : string;
  join_on : (string * string) list;
      (** (attribute of the view's surviving relations, attribute of
          [new_rel]) equality pairs that link the replacement in *)
  via_alias : string option;
      (** if [Some a], reuse/bind the replacement relation under alias [a];
          default: a fresh alias derived from [new_rel] *)
}

type rel_replacement = {
  repl_source : string;
  repl_rel : string;
  covers : (string * (string * string) list) list;
      (** every relation (at the dropped relation's source) this replacement
          subsumes, with its attribute mapping (old name → name in the
          replacement).  A singleton list is the ordinary one-for-one
          substitution; Example 1.b registers
          [StoreItems covers Store{Store→Store} and
          Item{Book→Book; Author→Author; Price→Price}] — the [SID] join
          attribute is unmapped because the replacement {e internalizes}
          the Store ⋈ Item join, so synchronization drops that join
          condition (Query (3)). *)
}

type t = {
  mutable attr_repl : ((string * string * string) * attr_replacement) list;
      (** (source, rel, attr) → replacement *)
  mutable rel_repl : ((string * string) * rel_replacement) list;
      (** (source, rel) → replacement *)
  mutable dispensable : (string * string * string) list;
      (** attributes the view owner allows to silently disappear *)
}

let create () = { attr_repl = []; rel_repl = []; dispensable = [] }

(** [add_attr_replacement t ~source ~rel ~attr repl] registers where to find
    attribute [attr] of [rel@source] if it disappears. *)
let add_attr_replacement t ~source ~rel ~attr repl =
  t.attr_repl <- ((source, rel, attr), repl) :: t.attr_repl

(** [add_rel_replacement t ~source ~rel repl] registers a substitute
    relation for [rel@source]. *)
let add_rel_replacement t ~source ~rel repl =
  t.rel_repl <- ((source, rel), repl) :: t.rel_repl

(** [mark_dispensable t ~source ~rel ~attr] allows the view to simply lose
    this attribute (EVE's "dispensable" evolution preference). *)
let mark_dispensable t ~source ~rel ~attr =
  t.dispensable <- (source, rel, attr) :: t.dispensable

let attr_replacement t ~source ~rel ~attr =
  List.assoc_opt (source, rel, attr) t.attr_repl

(** [rel_replacement t ~source ~rel] finds a replacement registered for
    [rel] itself or one whose [covers] list subsumes [rel]. *)
let rel_replacement t ~source ~rel =
  match List.assoc_opt (source, rel) t.rel_repl with
  | Some r -> Some r
  | None ->
      List.find_map
        (fun ((s, _), (r : rel_replacement)) ->
          if String.equal s source && List.mem_assoc rel r.covers then Some r
          else None)
        t.rel_repl

let is_dispensable t ~source ~rel ~attr =
  List.mem (source, rel, attr) t.dispensable

type snapshot = {
  s_attr_repl : ((string * string * string) * attr_replacement) list;
  s_rel_repl : ((string * string) * rel_replacement) list;
  s_dispensable : (string * string * string) list;
}

(** [save t] / [restore t s] — the synchronizer re-keys entries as it
    propagates renames; an aborted maintenance process must roll that back
    together with the view definition, or retries will no longer find
    their replacements. *)
let save t =
  { s_attr_repl = t.attr_repl; s_rel_repl = t.rel_repl; s_dispensable = t.dispensable }

let restore t s =
  t.attr_repl <- s.s_attr_repl;
  t.rel_repl <- s.s_rel_repl;
  t.dispensable <- s.s_dispensable

(** [rename_relation t ~source ~old_rel ~new_rel] re-keys every entry that
    mentions [old_rel] at [source] — the wrappers keep the meta knowledge
    aligned with the sources' current names, so that later changes to a
    renamed relation still find their replacements. *)
let rename_relation t ~source ~old_rel ~new_rel =
  let rekey (s, r) = if String.equal s source && String.equal r old_rel then (s, new_rel) else (s, r) in
  t.attr_repl <-
    List.map (fun ((s, r, a), v) ->
        let s', r' = rekey (s, r) in
        ((s', r', a), v))
      t.attr_repl;
  t.rel_repl <- List.map (fun (k, v) -> (rekey k, v)) t.rel_repl;
  t.dispensable <-
    List.map (fun (s, r, a) ->
        let s', r' = rekey (s, r) in
        (s', r', a))
      t.dispensable

(** [rename_attribute t ~source ~rel ~old_attr ~new_attr] re-keys
    attribute-level entries after a column rename. *)
let rename_attribute t ~source ~rel ~old_attr ~new_attr =
  let rekey (s, r, a) =
    if String.equal s source && String.equal r rel && String.equal a old_attr
    then (s, r, new_attr)
    else (s, r, a)
  in
  t.attr_repl <- List.map (fun (k, v) -> (rekey k, v)) t.attr_repl;
  t.dispensable <- List.map rekey t.dispensable

let pp ppf t =
  let pp_ar ppf ((s, r, a), (ar : attr_replacement)) =
    Fmt.pf ppf "%s.%s@%s -> %s.%s@%s" r a s ar.new_rel ar.new_attr
      ar.new_source
  in
  let pp_rr ppf ((s, r), (rr : rel_replacement)) =
    Fmt.pf ppf "%s@%s -> %s@%s covering {%a}" r s rr.repl_rel rr.repl_source
      Fmt.(
        list ~sep:(any "; ") (fun ppf (rel, m) ->
            Fmt.pf ppf "%s[%a]" rel
              (list ~sep:(any ",") (fun ppf (a, b) -> Fmt.pf ppf "%s->%s" a b))
              m))
      rr.covers
  in
  Fmt.pf ppf "@[<v>attr replacements:@,%a@,rel replacements:@,%a@]"
    Fmt.(list ~sep:cut pp_ar)
    t.attr_repl
    Fmt.(list ~sep:cut pp_rr)
    t.rel_repl
