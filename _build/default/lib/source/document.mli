(** A miniature semi-structured (XML-like) document store: immutable
    element trees with tags and text, plus the traversals the
    {!Xml_wrapper} needs.  This is the native format of the paper's
    Retailer source (Figure 1), which a wrapper maps into relational
    tables. *)

type node = { tag : string; text : string option; children : node list }

val elem : string -> node list -> node
val leaf : string -> string -> node
val tag : node -> string
val children : node -> node list

val text_of : node -> string
(** Text directly carried by the node ([""] when none). *)

val child : node -> string -> node option
(** First child with the tag. *)

val child_text : node -> string -> string option

val select_with_context : string list -> node list -> (node list * node) list
(** Every node reached by following a tag path (first component matches
    the roots themselves); each result carries its ancestor chain
    (outermost first, excluding the node itself).  Document order. *)

val select : string list -> node list -> node list

val pp : Format.formatter -> node -> unit
val to_string : node -> string
val equal : node -> node -> bool
