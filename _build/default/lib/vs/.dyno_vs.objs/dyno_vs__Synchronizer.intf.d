lib/vs/synchronizer.mli: Dyno_relational Dyno_source Format Meta_knowledge Query Registry Schema Schema_change
