lib/vs/synchronizer.ml: Attr Catalog Data_source Dyno_relational Dyno_source Fmt List Meta_knowledge Predicate Query Registry Schema Schema_change String
