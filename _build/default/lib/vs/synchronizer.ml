(** View Synchronization (VS): evolving the view definition under source
    schema changes — an EVE-style rewriter [9].

    Given a schema change and the meta knowledge registry, the synchronizer
    produces a {e possibly non-equivalent} rewriting of the view (the
    paper's Queries (3)–(5)):

    - renames are propagated through the definition;
    - a dropped attribute that the view uses is replaced through a
      registered attribute replacement (joining in a substitute relation,
      as [ReaderDigest.Comments] replaces [Catalog.Review]), or silently
      dropped from the select list when marked dispensable;
    - a dropped relation is substituted by a registered replacement
      relation with its attribute mapping (as [StoreItems] replaces
      [Store ⋈ Item]);
    - when no rewriting exists the synchronization fails and the view
      becomes undefined.

    The rewriting also maintains the view manager's {e believed schemas} —
    the metadata from which future maintenance queries are built. *)

open Dyno_relational
open Dyno_source

exception Failed of string

let fail fmt = Fmt.kstr (fun s -> raise (Failed s)) fmt

(** What the synchronizer did, for traces and tests. *)
type action =
  | No_effect
  | Propagated_rename of string  (** human-readable description *)
  | Schema_tracked of string  (** believed schema updated, query unchanged *)
  | Dropped_dispensable of { alias : string; attr : string }
  | Replaced_attribute of {
      alias : string;
      attr : string;
      via_alias : string;
      new_rel : string;
    }
  | Replaced_relation of { alias : string; old_rel : string; new_rel : string }

let pp_action ppf = function
  | No_effect -> Fmt.string ppf "no effect on view"
  | Propagated_rename d -> Fmt.pf ppf "propagated rename: %s" d
  | Schema_tracked d -> Fmt.pf ppf "tracked schema: %s" d
  | Dropped_dispensable { alias; attr } ->
      Fmt.pf ppf "dropped dispensable %s.%s from view" alias attr
  | Replaced_attribute { alias; attr; via_alias; new_rel } ->
      Fmt.pf ppf "replaced %s.%s via %s (alias %s)" alias attr new_rel via_alias
  | Replaced_relation { alias; old_rel; new_rel } ->
      Fmt.pf ppf "replaced relation %s (alias %s) by %s" old_rel alias new_rel

type result = {
  query : Query.t;
  schemas : (string * Schema.t) list;
  actions : action list;
}

(* -- helpers -------------------------------------------------------- *)

let owner_fn schemas (r : Attr.Qualified.t) =
  let attr = Attr.Qualified.attr r in
  match List.filter (fun (_, s) -> Schema.mem s attr) schemas with
  | [ (a, _) ] -> a
  | [] -> fail "unknown attribute %s in view" attr
  | many ->
      fail "ambiguous attribute %s (%s)" attr
        (String.concat ", " (List.map fst many))

let set_schema schemas alias s =
  (alias, s) :: List.remove_assoc alias schemas

(** Does the view use attribute [attr] of [alias] anywhere? *)
let uses_attr query schemas alias attr =
  let owner = owner_fn schemas in
  List.exists (String.equal attr) (Query.refs_of_alias query alias owner)

let fresh_alias query base =
  let taken = Query.aliases query in
  let rec go i =
    let cand = if i = 0 then base else Fmt.str "%s%d" base i in
    if List.mem cand taken then go (i + 1) else cand
  in
  go 0

(** Rewrite every reference to [alias.attr] into [to_alias.to_attr]. *)
let redirect_refs query schemas ~alias ~attr ~to_alias ~to_attr =
  let owner = owner_fn schemas in
  Query.map_refs
    (fun r ->
      let a =
        match Attr.Qualified.rel r with Some x -> x | None -> owner r
      in
      if String.equal a alias && String.equal (Attr.Qualified.attr r) attr
      then Attr.Qualified.make ~rel:to_alias to_attr
      else r)
    query

(** The schema of a replacement relation, as reported by its wrapper. *)
let replacement_schema registry ~source ~rel =
  match Registry.find_opt registry source with
  | None -> fail "replacement source %s is not registered" source
  | Some s -> (
      match Catalog.schema_of_opt (Data_source.catalog s) rel with
      | Some schema -> schema
      | None -> fail "replacement relation %s@%s does not exist" rel source)

(** [replace_relations] substitutes every view relation subsumed by [repl]
    with the single replacement relation.  When the replacement covers
    several view relations (the XML remapping of Example 1.b: [StoreItems]
    covers both [Store] and [Item]), their aliases collapse into one and
    the join conditions the replacement internalizes (on unmapped
    attributes such as [SID]) are removed — producing Query (3). *)
let replace_relations _mk registry ~(query : Query.t) ~schemas ~source
    ~dropped (repl : Meta_knowledge.rel_replacement) : result =
  let repl_schema =
    replacement_schema registry ~source:repl.Meta_knowledge.repl_source
      ~rel:repl.Meta_knowledge.repl_rel
  in
  let covered =
    List.filter
      (fun (tr : Query.table_ref) ->
        String.equal tr.source source
        && List.mem_assoc tr.rel repl.Meta_knowledge.covers)
      (Query.from query)
  in
  if covered = [] then
    fail "replacement for %s@%s covers no view relation" dropped source;
  let covered_aliases = List.map (fun (tr : Query.table_ref) -> tr.alias) covered in
  (* The collapsed alias keeps the first covered alias's name, as the
     paper's Query (3) keeps alias S for StoreItems. *)
  let via = (List.hd covered).Query.alias in
  let owner = owner_fn schemas in
  (* 1. Fully qualify references so rewriting is purely syntactic. *)
  let query =
    Query.map_refs
      (fun r ->
        match Attr.Qualified.rel r with
        | Some _ -> r
        | None -> Attr.Qualified.make ~rel:(owner r) (Attr.Qualified.attr r))
      query
  in
  (* 2. Redirect every mapped attribute to the replacement alias. *)
  let query =
    List.fold_left
      (fun q (tr : Query.table_ref) ->
        let amap = List.assoc tr.Query.rel repl.Meta_knowledge.covers in
        List.fold_left
          (fun q (old_a, new_a) ->
            if not (Schema.mem repl_schema new_a) then
              fail "replacement %s has no attribute %s"
                repl.Meta_knowledge.repl_rel new_a;
            Query.map_refs
              (fun (r : Attr.Qualified.t) ->
                if
                  Attr.Qualified.rel r = Some tr.Query.alias
                  && String.equal (Attr.Qualified.attr r) old_a
                then Attr.Qualified.make ~rel:via new_a
                else r)
              q)
          q amap)
      query covered
  in
  (* 3. Leftover references to covered aliases are unmapped attributes.
     An atom entirely inside the covered group expressed a join the
     replacement internalizes — drop it; anything else is unrewritable. *)
  let leftover (r : Attr.Qualified.t) =
    match Attr.Qualified.rel r with
    | Some a when String.equal a via ->
        not (Schema.mem repl_schema (Attr.Qualified.attr r))
    | Some a -> List.mem a covered_aliases
    | None -> false
  in
  List.iter
    (fun (it : Query.select_item) ->
      if leftover it.Query.expr then
        fail "select-list attribute %a is not mapped by the replacement"
          Attr.Qualified.pp it.Query.expr)
    (Query.select query);
  let where' =
    List.filter
      (fun (a : Predicate.atom) ->
        let refs = Predicate.refs [ a ] in
        if List.exists leftover refs then
          if
            List.for_all
              (fun (r : Attr.Qualified.t) ->
                match Attr.Qualified.rel r with
                | Some al ->
                    String.equal al via || List.mem al covered_aliases
                | None -> false)
              refs
          then false (* internalized join condition *)
          else
            fail "predicate %a uses an unmapped attribute" Predicate.pp_atom a
        else true)
      (Query.where query)
  in
  (* 4. Remove reflexive atoms produced by the collapse (via.x = via.x). *)
  let where' =
    List.filter
      (fun (a : Predicate.atom) ->
        match (a.Predicate.op, a.Predicate.lhs, a.Predicate.rhs) with
        | Predicate.Eq, Predicate.Ref x, Predicate.Ref y ->
            not (Attr.Qualified.equal x y)
        | _ -> true)
      where'
  in
  (* 5. Rebuild FROM: the first covered entry becomes the replacement, the
     other covered entries disappear. *)
  let from' =
    List.filter_map
      (fun (tr : Query.table_ref) ->
        if String.equal tr.alias via then
          Some
            {
              Query.source = repl.Meta_knowledge.repl_source;
              rel = repl.Meta_knowledge.repl_rel;
              alias = via;
            }
        else if List.mem tr.alias covered_aliases then None
        else Some tr)
      (Query.from query)
  in
  let query = { query with Query.from = from'; where = where' } in
  let schemas =
    set_schema
      (List.filter (fun (a, _) -> not (List.mem a covered_aliases)) schemas)
      via repl_schema
  in
  {
    query;
    schemas;
    actions =
      List.map
        (fun (tr : Query.table_ref) ->
          Replaced_relation
            {
              alias = tr.Query.alias;
              old_rel = tr.Query.rel;
              new_rel = repl.Meta_knowledge.repl_rel;
            })
        covered;
  }

(* -- the rewriter, one primitive change at a time ------------------- *)

(** [sync_one mk registry ~query ~schemas sc] rewrites [query] (and the
    believed [schemas]) for one schema change.
    @raise Failed when no legal rewriting exists. *)
let sync_one (mk : Meta_knowledge.t) (registry : Registry.t)
    ~(query : Query.t) ~(schemas : (string * Schema.t) list)
    (sc : Schema_change.t) : result =
  let aliases_of ~source ~rel =
    List.filter
      (fun (tr : Query.table_ref) ->
        String.equal tr.source source && String.equal tr.rel rel)
      (Query.from query)
  in
  match sc with
  | Add_relation _ -> { query; schemas; actions = [ No_effect ] }
  | Rename_relation { source; old_name; new_name } -> (
      (* The wrapper keeps meta knowledge keyed by current names. *)
      Meta_knowledge.rename_relation mk ~source ~old_rel:old_name
        ~new_rel:new_name;
      match aliases_of ~source ~rel:old_name with
      | [] -> { query; schemas; actions = [ No_effect ] }
      | _ ->
          {
            query = Query.rename_relation query ~source ~old_rel:old_name ~new_rel:new_name;
            schemas;
            actions =
              [ Propagated_rename (Fmt.str "%s -> %s at %s" old_name new_name source) ];
          })
  | Rename_attribute { source; rel; old_name; new_name } ->
      Meta_knowledge.rename_attribute mk ~source ~rel ~old_attr:old_name
        ~new_attr:new_name;
      let touched = aliases_of ~source ~rel in
      if touched = [] then { query; schemas; actions = [ No_effect ] }
      else
        let query, schemas, actions =
          List.fold_left
            (fun (q, ss, acts) (tr : Query.table_ref) ->
              let owner = owner_fn ss in
              let q' =
                if uses_attr q ss tr.alias old_name then
                  Query.rename_attribute q ~alias:tr.alias ~old_name ~new_name owner
                else q
              in
              let ss' =
                match List.assoc_opt tr.alias ss with
                | Some s -> set_schema ss tr.alias (Schema.rename s ~old_name ~new_name)
                | None -> ss
              in
              ( q',
                ss',
                Propagated_rename
                  (Fmt.str "%s.%s -> %s" tr.alias old_name new_name)
                :: acts ))
            (query, schemas, []) touched
        in
        { query; schemas; actions }
  | Add_attribute { source; rel; attr; _ } ->
      let touched = aliases_of ~source ~rel in
      if touched = [] then { query; schemas; actions = [ No_effect ] }
      else
        let schemas =
          List.fold_left
            (fun ss (tr : Query.table_ref) ->
              match List.assoc_opt tr.alias ss with
              | Some s -> set_schema ss tr.alias (Schema.add s attr)
              | None -> ss)
            schemas touched
        in
        {
          query;
          schemas;
          actions =
            [ Schema_tracked (Fmt.str "added %s to %s" (Attr.name attr) rel) ];
        }
  | Drop_attribute { source; rel; attr } ->
      let touched = aliases_of ~source ~rel in
      if touched = [] then { query; schemas; actions = [ No_effect ] }
      else
        List.fold_left
          (fun acc (tr : Query.table_ref) ->
            let query, schemas, actions = (acc.query, acc.schemas, acc.actions) in
            let used = uses_attr query schemas tr.alias attr in
            let drop_from_schema ss =
              match List.assoc_opt tr.alias ss with
              | Some s -> set_schema ss tr.alias (Schema.drop s attr)
              | None -> ss
            in
            if not used then
              {
                query;
                schemas = drop_from_schema schemas;
                actions =
                  Schema_tracked (Fmt.str "dropped unused %s of %s" attr rel)
                  :: actions;
              }
            else begin
              match
                Meta_knowledge.attr_replacement mk ~source ~rel ~attr
              with
              | Some repl ->
                  let via =
                    match repl.Meta_knowledge.via_alias with
                    | Some a -> a
                    | None -> fresh_alias query repl.Meta_knowledge.new_rel
                  in
                  let repl_schema =
                    replacement_schema registry
                      ~source:repl.Meta_knowledge.new_source
                      ~rel:repl.Meta_knowledge.new_rel
                  in
                  (* Add the substitute relation (if not already joined). *)
                  let query =
                    if List.mem via (Query.aliases query) then query
                    else
                      {
                        query with
                        Query.from =
                          Query.from query
                          @ [
                              {
                                Query.source = repl.Meta_knowledge.new_source;
                                rel = repl.Meta_knowledge.new_rel;
                                alias = via;
                              };
                            ];
                      }
                  in
                  let schemas = set_schema schemas via repl_schema in
                  (* Link it in through the registered join conditions. *)
                  let owner = owner_fn (drop_from_schema schemas) in
                  let join_atoms =
                    List.map
                      (fun (local, remote) ->
                        let local_q = Attr.Qualified.of_string local in
                        let local_q =
                          match Attr.Qualified.rel local_q with
                          | Some _ -> local_q
                          | None ->
                              Attr.Qualified.make ~rel:(owner local_q)
                                (Attr.Qualified.attr local_q)
                        in
                        Predicate.atom (Predicate.Ref local_q) Predicate.Eq
                          (Predicate.Ref (Attr.Qualified.make ~rel:via remote)))
                      repl.Meta_knowledge.join_on
                  in
                  let new_atoms =
                    List.filter
                      (fun a -> not (List.mem a (Query.where query)))
                      join_atoms
                  in
                  let query =
                    { query with Query.where = Query.where query @ new_atoms }
                  in
                  (* Redirect every use of the dropped attribute.  Owner
                     resolution must run against the PRE-drop schemas —
                     the references being rewritten still use the old
                     name. *)
                  let query =
                    redirect_refs query schemas ~alias:tr.alias ~attr
                      ~to_alias:via ~to_attr:repl.Meta_knowledge.new_attr
                  in
                  {
                    query;
                    schemas = drop_from_schema schemas;
                    actions =
                      Replaced_attribute
                        {
                          alias = tr.alias;
                          attr;
                          via_alias = via;
                          new_rel = repl.Meta_knowledge.new_rel;
                        }
                      :: actions;
                  }
              | None ->
                  if Meta_knowledge.is_dispensable mk ~source ~rel ~attr then begin
                    (* Only select-list uses can be silently dropped; a
                       dropped join attribute leaves the view undefined. *)
                    let owner = owner_fn schemas in
                    let in_where =
                      List.exists
                        (fun (r : Attr.Qualified.t) ->
                          String.equal
                            (match Attr.Qualified.rel r with
                            | Some a -> a
                            | None -> owner r)
                            tr.alias
                          && String.equal (Attr.Qualified.attr r) attr)
                        (Predicate.refs (Query.where query))
                    in
                    if in_where then
                      fail
                        "attribute %s of %s is used in a join/filter and has \
                         no replacement"
                        attr rel;
                    let select' =
                      List.filter
                        (fun (it : Query.select_item) ->
                          not
                            (String.equal
                               (match Attr.Qualified.rel it.Query.expr with
                               | Some a -> a
                               | None -> owner it.Query.expr)
                               tr.alias
                            && String.equal
                                 (Attr.Qualified.attr it.Query.expr)
                                 attr))
                        (Query.select query)
                    in
                    if select' = [] then
                      fail "dropping %s would empty the select list" attr;
                    {
                      query = { query with Query.select = select' };
                      schemas = drop_from_schema schemas;
                      actions =
                        Dropped_dispensable { alias = tr.alias; attr } :: actions;
                    }
                  end
                  else
                    fail
                      "no replacement and not dispensable: %s.%s@%s (view %s)"
                      rel attr source (Query.name query)
            end)
          { query; schemas; actions = [] }
          touched
  | Drop_relation { source; name } -> (
      match aliases_of ~source ~rel:name with
      | [] -> { query; schemas; actions = [ No_effect ] }
      | _touched -> (
          match Meta_knowledge.rel_replacement mk ~source ~rel:name with
          | None -> fail "no replacement for dropped relation %s@%s" name source
          | Some repl ->
              replace_relations mk registry ~query ~schemas ~source ~dropped:name
                repl))

(** [sync_many mk registry ~query ~schemas scs] folds a sequence of changes
    (used for merged batch nodes, Section 5: the combined schema changes
    are applied to the view definition in one synchronization step). *)
let sync_many mk registry ~query ~schemas scs =
  List.fold_left
    (fun acc sc ->
      let r = sync_one mk registry ~query:acc.query ~schemas:acc.schemas sc in
      { r with actions = acc.actions @ r.actions })
    { query; schemas; actions = [] }
    scs
