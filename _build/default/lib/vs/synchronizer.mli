(** View Synchronization (VS): evolving the view definition under source
    schema changes — an EVE-style rewriter producing possibly
    non-equivalent rewritings (the paper's Queries (3)–(5)): renames
    propagate, dropped attributes are replaced through registered
    substitutes or silently removed when dispensable, dropped relations
    are substituted (collapsing subsumed aliases and internalized joins).
    Also maintains the view manager's believed schemas and keeps the meta
    knowledge keyed by current names. *)

open Dyno_relational
open Dyno_source

exception Failed of string
(** No legal rewriting exists; the view becomes undefined. *)

(** What the synchronizer did, for traces and tests. *)
type action =
  | No_effect
  | Propagated_rename of string
  | Schema_tracked of string
  | Dropped_dispensable of { alias : string; attr : string }
  | Replaced_attribute of {
      alias : string;
      attr : string;
      via_alias : string;
      new_rel : string;
    }
  | Replaced_relation of { alias : string; old_rel : string; new_rel : string }

val pp_action : Format.formatter -> action -> unit

type result = {
  query : Query.t;
  schemas : (string * Schema.t) list;  (** updated believed schemas *)
  actions : action list;
}

val sync_one :
  Meta_knowledge.t ->
  Registry.t ->
  query:Query.t ->
  schemas:(string * Schema.t) list ->
  Schema_change.t ->
  result
(** Rewrite for one schema change.  @raise Failed when unrewritable. *)

val sync_many :
  Meta_knowledge.t ->
  Registry.t ->
  query:Query.t ->
  schemas:(string * Schema.t) list ->
  Schema_change.t list ->
  result
(** Fold a whole sequence — the combined synchronization step of merged
    batch maintenance (Section 5). *)
