(** Maintenance-query construction.

    A view maintenance process decomposes the view query into per-source
    probe queries (the paper's Query (2)): for each relation joined by the
    view, a probe ships the current partial result to the relation's source
    and asks for the joining tuples.  This module builds those probes and
    the name plumbing around them.

    Partial results use {e prefixed} attribute names [alias__attr] so that
    a single flat schema can carry columns of many view aliases without
    clashes. *)

open Dyno_relational

exception Unsupported of string

let unsupported fmt = Fmt.kstr (fun s -> raise (Unsupported s)) fmt

(** Name of view attribute [alias.attr] inside a partial result. *)
let pname alias attr = alias ^ "__" ^ attr

(** Alias under which the shipped partial result is bound at the source. *)
let partial_alias = "__p"

(** [owner_of_schemas schemas] resolves unqualified references against the
    view manager's believed alias schemas.
    @raise Eval.Error on unknown/ambiguous references. *)
let owner_of_schemas (schemas : (string * Schema.t) list)
    (r : Attr.Qualified.t) =
  let attr = Attr.Qualified.attr r in
  match List.filter (fun (_, s) -> Schema.mem s attr) schemas with
  | [ (a, _) ] -> a
  | [] -> raise (Eval.Error (Fmt.str "unknown attribute %s" attr))
  | many ->
      raise
        (Eval.Error
           (Fmt.str "ambiguous attribute %s (%s)" attr
              (String.concat ", " (List.map fst many))))

(** [alias_of_ref owner r] is the alias a reference belongs to. *)
let alias_of_ref owner (r : Attr.Qualified.t) =
  match Attr.Qualified.rel r with Some a -> a | None -> owner r

(** [needed_attrs q owner alias] is the deduplicated list of attributes of
    [alias] that the view query uses anywhere (select list, predicates). *)
let needed_attrs (q : Query.t) owner alias =
  let names = Query.refs_of_alias q alias owner in
  List.fold_left
    (fun acc n -> if List.mem n acc then acc else acc @ [ n ])
    [] names

(** Atoms of the view predicate that are local to [alias] (reference only
    that alias and constants), with references qualified explicitly. *)
let local_atoms (q : Query.t) owner alias =
  List.filter_map
    (fun (a : Predicate.atom) ->
      let refs = Predicate.refs [ a ] in
      let aliases =
        List.sort_uniq String.compare (List.map (alias_of_ref owner) refs)
      in
      match aliases with
      | [ x ] when String.equal x alias ->
          let qualify = function
            | Predicate.Ref r ->
                Predicate.Ref (Attr.Qualified.make ~rel:alias (Attr.Qualified.attr r))
            | c -> c
          in
          Some { a with Predicate.lhs = qualify a.lhs; rhs = qualify a.rhs }
      | _ -> None)
    q.Query.where

(** Cross-alias equality atoms between [alias] and any alias in [bound]
    (attributes qualified).  Returned as [(attr_of_alias, bound_alias,
    attr_of_bound)] triples. *)
let join_pairs_with (q : Query.t) owner alias bound =
  List.filter_map
    (fun ((ax, qx), (ay, qy)) ->
      let open Attr.Qualified in
      if String.equal ax alias && List.mem ay bound then
        Some (attr qx, ay, attr qy)
      else if String.equal ay alias && List.mem ax bound then
        Some (attr qy, ax, attr qx)
      else None)
    (Predicate.equijoin_pairs owner q.Query.where)

(** Cross-alias atoms that are not hash-joinable equalities; applied as a
    residual filter once all aliases are joined into the partial. *)
let residual_atoms (q : Query.t) owner =
  List.filter
    (fun (a : Predicate.atom) ->
      let refs = Predicate.refs [ a ] in
      let aliases =
        List.sort_uniq String.compare (List.map (alias_of_ref owner) refs)
      in
      List.length aliases > 1
      &&
      match (a.op, a.lhs, a.rhs) with
      | Predicate.Eq, Predicate.Ref _, Predicate.Ref _ -> false
      | _ -> true)
    q.Query.where

(** [probe_query q owner (tr, partial_schema, bound_aliases)] builds the
    maintenance query probing table [tr] with the current partial result
    shipped along: it selects [tr]'s needed attributes (renamed to their
    prefixed partial names) plus all partial columns, restricted by [tr]'s
    local filters and its join conditions with the already-bound aliases. *)
let probe_query (q : Query.t) owner (tr : Query.table_ref)
    ~(partial_schema : Schema.t) ~(bound : string list) : Query.t =
  let needed = needed_attrs q owner tr.alias in
  if needed = [] then
    (* A relation joined without contributing any attribute: probe its
       cardinality via all attributes of the join keys; in SPJ views this
       cannot happen unless the alias is disconnected, which [make]
       rejects elsewhere. *)
    unsupported "alias %s contributes no attribute to view %s" tr.alias
      (Query.name q);
  let select_t =
    List.map
      (fun a ->
        {
          Query.expr = Attr.Qualified.make ~rel:tr.alias a;
          as_name = pname tr.alias a;
        })
      needed
  in
  let select_p =
    List.map
      (fun a ->
        {
          Query.expr = Attr.Qualified.make ~rel:partial_alias (Attr.name a);
          as_name = Attr.name a;
        })
      (Schema.attrs partial_schema)
  in
  let joins =
    List.map
      (fun (my_attr, b_alias, b_attr) ->
        Predicate.atom
          (Predicate.Ref (Attr.Qualified.make ~rel:tr.alias my_attr))
          Predicate.Eq
          (Predicate.Ref
             (Attr.Qualified.make ~rel:partial_alias (pname b_alias b_attr))))
      (join_pairs_with q owner tr.alias bound)
  in
  Query.make
    ~name:(Fmt.str "maint:%s:%s" (Query.name q) tr.alias)
    ~select:(select_t @ select_p)
    ~from:
      [
        { tr with alias = tr.alias };
        { Query.source = tr.source; rel = partial_alias; alias = partial_alias };
      ]
    ~where:(local_atoms q owner tr.alias @ joins)

(** [initial_partial q owner tr delta] turns the delta of the maintained
    update into the first partial result: local filters applied, needed
    attributes projected, names prefixed. *)
let initial_partial (q : Query.t) owner (tr : Query.table_ref)
    (delta : Relation.t) : Relation.t =
  let schema = Relation.schema delta in
  let locals = local_atoms q owner tr.alias in
  let filtered =
    if locals = [] then delta
    else
      let resolve (r : Attr.Qualified.t) =
        Schema.index_of schema (Attr.Qualified.attr r)
      in
      Relation.select (fun t -> Predicate.eval resolve locals t) delta
  in
  let needed = needed_attrs q owner tr.alias in
  let projected = Relation.project filtered needed in
  List.fold_left
    (fun r a ->
      Relation.rename_attr r ~old_name:a ~new_name:(pname tr.alias a))
    projected needed

(** [final_projection q owner partial] projects the completed partial
    result onto the view's select list, restoring output names/types. *)
let final_projection (q : Query.t) owner (partial : Relation.t) : Relation.t =
  let pschema = Relation.schema partial in
  let residual = residual_atoms q owner in
  let resolve (r : Attr.Qualified.t) =
    Schema.index_of pschema
      (pname (alias_of_ref owner r) (Attr.Qualified.attr r))
  in
  let filtered =
    if residual = [] then partial
    else Relation.select (fun t -> Predicate.eval resolve residual t) partial
  in
  let items =
    List.map
      (fun (it : Query.select_item) ->
        let pos = resolve it.expr in
        (pos, Attr.make it.as_name (Attr.ty (Schema.attr_at pschema pos))))
      (Query.select q)
  in
  let out_schema = Schema.of_list (List.map snd items) in
  let idxs = Array.of_list (List.map fst items) in
  Relation.map_tuples out_schema (fun t -> Tuple.project_idx t idxs) filtered

(** [fetch_query q owner tr] builds the adaptation probe for table [tr]:
    the relation's needed attributes under their own names, restricted by
    the view's local filters on [tr].  Unlike {!probe_query} no partial
    result is shipped — adaptation re-reads whole (filtered) relations. *)
let fetch_query (q : Query.t) owner (tr : Query.table_ref) : Query.t =
  let needed = needed_attrs q owner tr.alias in
  Query.make
    ~name:(Fmt.str "adapt:%s:%s" (Query.name q) tr.alias)
    ~select:
      (List.map
         (fun a ->
           { Query.expr = Attr.Qualified.make ~rel:tr.alias a; as_name = a })
         needed)
    ~from:[ tr ]
    ~where:(local_atoms q owner tr.alias)

(** [view_output_schema q schemas] is the schema of the view's extent as
    implied by the select list and the believed alias schemas. *)
let view_output_schema (q : Query.t) (schemas : (string * Schema.t) list) :
    Schema.t =
  let owner = owner_of_schemas schemas in
  Schema.of_list
    (List.map
       (fun (it : Query.select_item) ->
         let alias = alias_of_ref owner it.expr in
         let s =
           match List.assoc_opt alias schemas with
           | Some s -> s
           | None ->
               raise (Eval.Error (Fmt.str "no believed schema for alias %s" alias))
         in
         let a = Schema.find s (Attr.Qualified.attr it.expr) in
         Attr.make it.as_name (Attr.ty a))
       (Query.select q))

(** Sweep order: aliases other than the pivot, pivot-adjacent first — walk
    left to the start of the FROM list, then right to its end (the SWEEP
    processing order, which keeps chain joins connected). *)
let sweep_order (q : Query.t) pivot_alias =
  let refs = Query.from q in
  let idx =
    match
      List.mapi (fun i tr -> (i, tr)) refs
      |> List.find_opt (fun (_, (tr : Query.table_ref)) ->
             String.equal tr.alias pivot_alias)
    with
    | Some (i, _) -> i
    | None -> unsupported "alias %s not in view %s" pivot_alias (Query.name q)
  in
  let arr = Array.of_list refs in
  let left = List.init idx (fun k -> arr.(idx - 1 - k)) in
  let right =
    List.init (Array.length arr - idx - 1) (fun k -> arr.(idx + 1 + k))
  in
  left @ right
