lib/vm/maint_query.ml: Array Attr Dyno_relational Eval Fmt List Predicate Query Relation Schema String Tuple
