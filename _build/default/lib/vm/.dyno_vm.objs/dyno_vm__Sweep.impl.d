lib/vm/sweep.ml: Dyno_relational Dyno_sim Dyno_source Dyno_view Eval Fmt List Maint_query Query Query_engine Relation Schema Update Update_msg
