lib/vm/sweep.mli: Dyno_relational Dyno_source Dyno_view Query Query_engine Relation Schema
