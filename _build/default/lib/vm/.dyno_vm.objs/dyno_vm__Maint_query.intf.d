lib/vm/maint_query.mli: Attr Dyno_relational Predicate Query Relation Schema
