lib/vm/vm.ml: Dyno_relational Dyno_sim Dyno_source Dyno_view Eval Fmt Hashtbl List Maint_query Mat_view Query Query_engine Relation Schema String Sweep Update Update_msg View_def
