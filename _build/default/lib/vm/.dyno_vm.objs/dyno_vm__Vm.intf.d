lib/vm/vm.mli: Dyno_relational Dyno_source Dyno_view Mat_view Query_engine Sweep Update Update_msg
