(** Maintenance-query construction: the decomposition of the view query
    into per-source probes (the paper's Query (2)), partial-result name
    plumbing, sweep ordering and output projection. *)

open Dyno_relational

exception Unsupported of string

val pname : string -> string -> string
(** Name of view attribute [alias.attr] inside a partial result
    ([alias__attr]). *)

val partial_alias : string
(** Alias under which the shipped partial result is bound at a source. *)

val owner_of_schemas :
  (string * Schema.t) list -> Attr.Qualified.t -> string
(** Resolve unqualified references against believed alias schemas.
    @raise Eval.Error on unknown/ambiguous references. *)

val alias_of_ref :
  (Attr.Qualified.t -> string) -> Attr.Qualified.t -> string

val needed_attrs : Query.t -> (Attr.Qualified.t -> string) -> string -> string list
(** Deduplicated attributes of an alias used anywhere in the view query. *)

val local_atoms :
  Query.t -> (Attr.Qualified.t -> string) -> string -> Predicate.atom list
(** View predicate atoms local to one alias, with references qualified. *)

val join_pairs_with :
  Query.t ->
  (Attr.Qualified.t -> string) ->
  string ->
  string list ->
  (string * string * string) list
(** Equality atoms between an alias and any already-bound alias, as
    (attr_of_alias, bound_alias, attr_of_bound) triples. *)

val residual_atoms :
  Query.t -> (Attr.Qualified.t -> string) -> Predicate.atom list
(** Cross-alias atoms that are not hash-joinable equalities (applied once
    all aliases are joined). *)

val probe_query :
  Query.t ->
  (Attr.Qualified.t -> string) ->
  Query.table_ref ->
  partial_schema:Schema.t ->
  bound:string list ->
  Query.t
(** The maintenance query probing one table with the current partial
    result shipped along. *)

val fetch_query :
  Query.t -> (Attr.Qualified.t -> string) -> Query.table_ref -> Query.t
(** The adaptation probe: needed attributes under their own names,
    restricted by the view's local filters (no partial shipped). *)

val initial_partial :
  Query.t ->
  (Attr.Qualified.t -> string) ->
  Query.table_ref ->
  Relation.t ->
  Relation.t
(** Turn the maintained update's delta into the first partial result:
    local filters applied, needed attributes projected, names prefixed. *)

val final_projection :
  Query.t -> (Attr.Qualified.t -> string) -> Relation.t -> Relation.t
(** Project the completed partial result onto the view's select list
    (applying residual atoms), restoring output names and types. *)

val view_output_schema : Query.t -> (string * Schema.t) list -> Schema.t
(** The schema of the view's extent implied by the select list and the
    believed alias schemas. *)

val sweep_order : Query.t -> string -> Query.table_ref list
(** Aliases other than the pivot, pivot-adjacent first (walk left to the
    start of the FROM list, then right) — the SWEEP processing order that
    keeps chain joins connected. *)
