(** Attributes: a name plus a declared type.

    Attribute names are case-sensitive simple identifiers.  Qualified
    references (["Item.Book"]) are represented by {!Qualified} below and
    resolved against a {!Schema.t} at query-construction time. *)

type t = { name : string; ty : Value.Vtype.t }

let make name ty = { name; ty }

let name a = a.name
let ty a = a.ty

let equal a b = String.equal a.name b.name && Value.Vtype.equal a.ty b.ty

let compare a b =
  match String.compare a.name b.name with
  | 0 -> Value.Vtype.compare a.ty b.ty
  | c -> c

let pp ppf a = Fmt.pf ppf "%s:%a" a.name Value.Vtype.pp a.ty

let rename a name = { a with name }

(* Shorthand constructors for the common types. *)
let int name = make name Value.Vtype.TInt
let float name = make name Value.Vtype.TFloat
let string name = make name Value.Vtype.TString
let bool name = make name Value.Vtype.TBool

(** A possibly relation-qualified attribute reference as written in a query,
    e.g. [I.Author] versus plain [Author].  [rel] is a relation name or
    alias. *)
module Qualified = struct
  type t = { rel : string option; attr : string }

  let make ?rel attr = { rel; attr }

  let rel q = q.rel
  let attr q = q.attr

  let equal a b =
    Option.equal String.equal a.rel b.rel && String.equal a.attr b.attr

  let compare a b =
    match Option.compare String.compare a.rel b.rel with
    | 0 -> String.compare a.attr b.attr
    | c -> c

  let pp ppf q =
    match q.rel with
    | None -> Fmt.string ppf q.attr
    | Some r -> Fmt.pf ppf "%s.%s" r q.attr

  let to_string q = Fmt.str "%a" pp q

  (** [of_string "R.A"] parses an optionally qualified reference. *)
  let of_string s =
    match String.index_opt s '.' with
    | None -> { rel = None; attr = s }
    | Some i ->
        {
          rel = Some (String.sub s 0 i);
          attr = String.sub s (i + 1) (String.length s - i - 1);
        }
end
