(** SQL-flavoured rendering of queries, updates and schema changes.

    Purely for human consumption: traces, examples and the CLI render
    everything through this module so that runs read like the paper's
    Queries (1)–(5). *)

let pp_view ppf (q : Query.t) =
  Fmt.pf ppf "@[<v2>CREATE VIEW %s AS@,%a@]" (Query.name q) Query.pp q

let view_to_string q = Fmt.str "%a" pp_view q

let pp_values ppf (t : Tuple.t) =
  Fmt.pf ppf "(%a)" Fmt.(array ~sep:(any ", ") Value.pp) t

(** Renders a data update as a block of INSERT/DELETE statements. *)
let pp_update ppf (u : Update.t) =
  let rel = Update.rel u and source = Update.source u in
  let stmts =
    Relation.fold
      (fun t c acc ->
        let verb = if c > 0 then "INSERT INTO" else "DELETE FROM" in
        (Fmt.str "%s %s@%s VALUES %a%s" verb rel source pp_values t
           (if abs c > 1 then Fmt.str " x%d" (abs c) else ""))
        :: acc)
      (Update.delta u) []
  in
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut string) (List.sort String.compare stmts)

let update_to_string u = Fmt.str "%a" pp_update u

let pp_schema_change = Schema_change.pp

let schema_change_to_string = Schema_change.to_string

(** [pp_relation_table ppf r] renders a bordered ASCII table (sorted), used
    by the examples to show view extents. *)
let pp_relation_table ppf r =
  let schema = Relation.schema r in
  let headers = Schema.names schema in
  let rows =
    List.map
      (fun (t, c) ->
        List.map Value.to_string (Array.to_list t)
        @ if c = 1 then [] else [ Fmt.str "x%d" c ])
      (Relation.to_counted r)
  in
  let ncols = List.length headers in
  let width i =
    let of_row row = try String.length (List.nth row i) with _ -> 0 in
    List.fold_left (fun acc row -> max acc (of_row row)) (of_row headers) rows
  in
  let widths = List.init ncols width in
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let render_row row =
    "| "
    ^ String.concat " | " (List.mapi (fun i w -> pad (try List.nth row i with _ -> "") w) widths)
    ^ " |"
  in
  let sep =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+"
  in
  Fmt.pf ppf "@[<v>%s@,%s@,%s@,%a@,%s@]" sep (render_row headers) sep
    Fmt.(list ~sep:cut string)
    (List.map render_row rows) sep
