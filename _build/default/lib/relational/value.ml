(** Typed atomic values stored in tuples.

    The engine is dynamically checked: every value carries its own tag and
    the schema records the declared {!Vtype.t} of each attribute.  [VNull]
    inhabits every type, mirroring SQL's NULL (with two-valued comparison
    semantics: NULL equals NULL, which is what the view-maintenance
    literature assumes for delta bookkeeping of whole tuples). *)

type t =
  | VInt of int
  | VFloat of float
  | VString of string
  | VBool of bool
  | VNull

(** Declared type of an attribute. *)
module Vtype = struct
  type t = TInt | TFloat | TString | TBool

  let to_string = function
    | TInt -> "INT"
    | TFloat -> "FLOAT"
    | TString -> "VARCHAR"
    | TBool -> "BOOLEAN"

  let pp ppf t = Fmt.string ppf (to_string t)

  let equal (a : t) (b : t) = a = b

  let compare (a : t) (b : t) = Stdlib.compare a b

  let all = [ TInt; TFloat; TString; TBool ]
end

(** [type_of v] is [Some ty] for a non-null value, [None] for [VNull]. *)
let type_of = function
  | VInt _ -> Some Vtype.TInt
  | VFloat _ -> Some Vtype.TFloat
  | VString _ -> Some Vtype.TString
  | VBool _ -> Some Vtype.TBool
  | VNull -> None

(** [has_type v ty] holds when [v] may legally be stored in an attribute
    declared with type [ty].  [VNull] is a member of every type. *)
let has_type v ty =
  match type_of v with None -> true | Some t -> Vtype.equal t ty

let equal (a : t) (b : t) =
  match (a, b) with
  | VInt x, VInt y -> Int.equal x y
  | VFloat x, VFloat y -> Float.equal x y
  | VString x, VString y -> String.equal x y
  | VBool x, VBool y -> Bool.equal x y
  | VNull, VNull -> true
  | _ -> false

(** Total order across all values; values of distinct types are ordered by
    constructor rank so that sorting heterogeneous columns is deterministic. *)
let compare (a : t) (b : t) =
  let rank = function
    | VNull -> 0
    | VBool _ -> 1
    | VInt _ -> 2
    | VFloat _ -> 3
    | VString _ -> 4
  in
  match (a, b) with
  | VInt x, VInt y -> Int.compare x y
  | VFloat x, VFloat y -> Float.compare x y
  | VString x, VString y -> String.compare x y
  | VBool x, VBool y -> Bool.compare x y
  | VNull, VNull -> 0
  | _ -> Int.compare (rank a) (rank b)

let hash (v : t) =
  match v with
  | VInt x -> Hashtbl.hash (0, x)
  | VFloat x -> Hashtbl.hash (1, x)
  | VString x -> Hashtbl.hash (2, x)
  | VBool x -> Hashtbl.hash (3, x)
  | VNull -> Hashtbl.hash 4

let pp ppf = function
  | VInt i -> Fmt.int ppf i
  | VFloat f -> Fmt.float ppf f
  | VString s -> Fmt.pf ppf "'%s'" s
  | VBool b -> Fmt.bool ppf b
  | VNull -> Fmt.string ppf "NULL"

let to_string v = Fmt.str "%a" pp v

(* Convenience constructors, used pervasively by tests and examples. *)
let int i = VInt i
let float f = VFloat f
let string s = VString s
let bool b = VBool b
let null = VNull

(** [coerce_to ty v] converts [v] to type [ty] when a lossless conversion
    exists (int→float, anything→string); otherwise returns [None].  Used by
    view adaptation when a replacement attribute has a compatible but not
    identical declared type. *)
let coerce_to ty v =
  match (ty, v) with
  | _, VNull -> Some VNull
  | Vtype.TInt, VInt _ | Vtype.TFloat, VFloat _ -> Some v
  | Vtype.TString, VString _ | Vtype.TBool, VBool _ -> Some v
  | Vtype.TFloat, VInt i -> Some (VFloat (float_of_int i))
  | Vtype.TString, (VInt _ | VFloat _ | VBool _) -> Some (VString (to_string v))
  | _ -> None
