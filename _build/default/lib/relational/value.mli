(** Typed atomic values stored in tuples.

    The engine is dynamically checked: every value carries its own tag and
    the schema records the declared {!Vtype.t} of each attribute.  [VNull]
    inhabits every type, mirroring SQL's NULL (with two-valued comparison
    semantics, which is what delta bookkeeping of whole tuples assumes). *)

type t =
  | VInt of int
  | VFloat of float
  | VString of string
  | VBool of bool
  | VNull

(** Declared type of an attribute. *)
module Vtype : sig
  type t = TInt | TFloat | TString | TBool

  val to_string : t -> string
  val pp : Format.formatter -> t -> unit
  val equal : t -> t -> bool
  val compare : t -> t -> int

  val all : t list
  (** Every declared type (generators, exhaustive tests). *)
end

val type_of : t -> Vtype.t option
(** [Some ty] for a non-null value, [None] for [VNull]. *)

val has_type : t -> Vtype.t -> bool
(** May the value legally be stored in an attribute of the given type?
    [VNull] belongs to every type. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order across all values; distinct types ordered by constructor
    rank so sorting heterogeneous columns is deterministic. *)

val hash : t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Convenience constructors. *)

val int : int -> t
val float : float -> t
val string : string -> t
val bool : bool -> t
val null : t

val coerce_to : Vtype.t -> t -> t option
(** Lossless conversion when one exists (int→float, anything→string);
    [None] otherwise.  Null coerces to anything. *)
