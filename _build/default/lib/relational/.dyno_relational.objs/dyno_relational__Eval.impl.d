lib/relational/eval.ml: Array Attr Fmt List Option Predicate Query Relation Schema String Tuple
