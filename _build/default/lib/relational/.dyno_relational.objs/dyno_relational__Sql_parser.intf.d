lib/relational/sql_parser.mli: Query Schema Schema_change Update Value
