lib/relational/tuple.mli: Format Hashtbl Schema Value
