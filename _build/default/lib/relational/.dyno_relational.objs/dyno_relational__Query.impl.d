lib/relational/query.ml: Attr Fmt List Option Predicate String
