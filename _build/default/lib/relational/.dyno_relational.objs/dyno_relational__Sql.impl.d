lib/relational/sql.ml: Array Fmt List Query Relation Schema Schema_change String Tuple Update Value
