lib/relational/value.ml: Bool Float Fmt Hashtbl Int Stdlib String
