lib/relational/schema_change.mli: Attr Format Relation Schema Tuple Value
