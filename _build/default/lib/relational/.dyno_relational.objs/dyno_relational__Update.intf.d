lib/relational/update.mli: Format Relation Schema Value
