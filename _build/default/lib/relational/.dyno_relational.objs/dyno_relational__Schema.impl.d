lib/relational/schema.ml: Array Attr Fmt Hashtbl List Option String Value
