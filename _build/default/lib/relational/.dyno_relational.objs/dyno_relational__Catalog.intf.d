lib/relational/catalog.mli: Format Schema Schema_change
