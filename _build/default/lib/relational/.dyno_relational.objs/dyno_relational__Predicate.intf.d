lib/relational/predicate.mli: Attr Format Tuple Value
