lib/relational/attr.mli: Format Value
