lib/relational/attr.ml: Fmt Option String Value
