lib/relational/relation.ml: Array Fmt List Option Schema Tuple
