lib/relational/predicate.ml: Attr Fmt List String Tuple Value
