lib/relational/sql_lexer.ml: Buffer Fmt List String
