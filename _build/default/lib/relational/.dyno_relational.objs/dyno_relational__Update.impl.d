lib/relational/update.ml: Fmt Relation String Tuple
