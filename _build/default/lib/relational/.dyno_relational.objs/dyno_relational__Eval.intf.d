lib/relational/eval.mli: Attr Query Relation Schema
