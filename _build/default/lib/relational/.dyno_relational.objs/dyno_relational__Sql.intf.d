lib/relational/sql.mli: Format Query Relation Schema_change Tuple Update
