lib/relational/catalog.ml: Fmt List Schema Schema_change String
