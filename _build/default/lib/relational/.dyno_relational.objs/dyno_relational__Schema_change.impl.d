lib/relational/schema_change.ml: Array Attr Fmt List Relation Schema String Tuple Value
