lib/relational/query.mli: Attr Format Predicate
