lib/relational/sql_parser.ml: Attr Fmt List Option Predicate Query Relation Schema Schema_change Sql_lexer Tuple Update Value
