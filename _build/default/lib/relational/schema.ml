(** Relation schemas: an ordered list of distinctly-named attributes.

    Order matters — tuples are positional value arrays — so the schema is the
    single authority for translating attribute names to positions. *)

type t = { attrs : Attr.t array }

exception Duplicate_attribute of string
exception No_such_attribute of string

let of_list attrs =
  let arr = Array.of_list attrs in
  let seen = Hashtbl.create (Array.length arr) in
  Array.iter
    (fun a ->
      let n = Attr.name a in
      if Hashtbl.mem seen n then raise (Duplicate_attribute n)
      else Hashtbl.add seen n ())
    arr;
  { attrs = arr }

let attrs s = Array.to_list s.attrs
let arity s = Array.length s.attrs
let attr_at s i = s.attrs.(i)

let names s = Array.to_list (Array.map Attr.name s.attrs)

let mem s name =
  Array.exists (fun a -> String.equal (Attr.name a) name) s.attrs

(** [index_of s name] is the position of attribute [name].
    @raise No_such_attribute when absent. *)
let index_of s name =
  let rec go i =
    if i >= Array.length s.attrs then raise (No_such_attribute name)
    else if String.equal (Attr.name s.attrs.(i)) name then i
    else go (i + 1)
  in
  go 0

let index_of_opt s name =
  match index_of s name with i -> Some i | exception No_such_attribute _ -> None

let find s name = attr_at s (index_of s name)
let find_opt s name = Option.map (attr_at s) (index_of_opt s name)

let equal a b =
  Array.length a.attrs = Array.length b.attrs
  && Array.for_all2 Attr.equal a.attrs b.attrs

(** Same attribute names and types regardless of order. *)
let equivalent a b =
  let sort s = List.sort Attr.compare (attrs s) in
  List.equal Attr.equal (sort a) (sort b)

let pp ppf s =
  Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any ", ") Attr.pp) (attrs s)

let to_string s = Fmt.str "%a" pp s

(* -- Schema surgery: the primitives that schema changes are built from. -- *)

(** [project s names] keeps exactly [names], in the order given.
    @raise No_such_attribute when a name is absent. *)
let project s names =
  of_list (List.map (fun n -> find s n) names)

(** [drop s name] removes one attribute.
    @raise No_such_attribute when absent. *)
let drop s name =
  let i = index_of s name in
  of_list
    (List.filteri (fun j _ -> j <> i) (attrs s))

(** [add s attr] appends a new attribute.
    @raise Duplicate_attribute when the name is taken. *)
let add s attr =
  of_list (attrs s @ [ attr ])

(** [rename s ~old_name ~new_name] renames one attribute in place.
    @raise No_such_attribute / @raise Duplicate_attribute accordingly. *)
let rename s ~old_name ~new_name =
  let _ = index_of s old_name in
  if (not (String.equal old_name new_name)) && mem s new_name then
    raise (Duplicate_attribute new_name);
  of_list
    (List.map
       (fun a ->
         if String.equal (Attr.name a) old_name then Attr.rename a new_name
         else a)
       (attrs s))

(** [concat a b] is the schema of a join product; clashing names on the
    right-hand side are disambiguated with a ["_r"] suffix (repeated until
    fresh), mirroring how the paper's view has 24 = 6×4 attributes with
    implicit disambiguation. *)
let concat a b =
  let taken = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace taken n ()) (names a);
  let fresh n =
    let rec go n = if Hashtbl.mem taken n then go (n ^ "_r") else n in
    let n' = go n in
    Hashtbl.replace taken n' ();
    n'
  in
  of_list
    (attrs a
    @ List.map (fun at -> Attr.rename at (fresh (Attr.name at))) (attrs b))

(** [typecheck s values] verifies arity and per-position type membership. *)
let typecheck s (values : Value.t array) =
  Array.length values = arity s
  && Array.for_all2 (fun a v -> Value.has_type v (Attr.ty a)) s.attrs values

let empty = { attrs = [||] }
