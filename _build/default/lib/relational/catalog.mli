(** A source-local catalog: relation name → schema, with schema-change
    application.  One catalog lives inside every simulated data source;
    the view manager keeps {e stale copies} — that staleness is precisely
    what produces broken queries. *)

type t

exception No_such_relation of string
exception Relation_exists of string

val create : unit -> t
val of_list : (string * Schema.t) list -> t
val copy : t -> t

val relations : t -> string list
val mem : t -> string -> bool

val schema_of : t -> string -> Schema.t
(** @raise No_such_relation when absent. *)

val schema_of_opt : t -> string -> Schema.t option

val add_relation : t -> string -> Schema.t -> unit
(** @raise Relation_exists when taken. *)

val drop_relation : t -> string -> unit
val replace_schema : t -> string -> Schema.t -> unit
val rename_relation : t -> old_name:string -> new_name:string -> unit

val apply : t -> Schema_change.t -> unit
(** Mutate the catalog per one schema change.
    @raise No_such_relation / Relation_exists / schema exceptions when the
    change does not apply. *)

val validates : t -> Schema_change.t -> bool
(** Would [apply] succeed?  (Non-mutating.) *)

val pp : Format.formatter -> t -> unit
