(** Recursive-descent parser for the SQL dialect the system speaks:
    [CREATE VIEW … AS SELECT … FROM rel@source … WHERE …] view
    definitions (relations carry an explicit [@source] annotation, since
    queries span autonomous sources), plus DML ([INSERT]/[DELETE … VALUES])
    and DDL ([CREATE TABLE], [ALTER SOURCE]/[ALTER TABLE]) statements. *)

exception Parse_error of string

val parse_view : string -> (Query.t, string) result
(** [CREATE VIEW name AS SELECT …] or a bare [SELECT …] (named
    ["query"]). *)

(** Parsed DML/DDL statements.  Inserts/deletes carry raw value tuples —
    they become {!Update.t}s once the caller provides the relation's
    schema. *)
type statement =
  | Insert of { source : string; rel : string; rows : Value.t list list }
  | Delete of { source : string; rel : string; rows : Value.t list list }
  | Create_table of { source : string; rel : string; schema : Schema.t }
  | Alter of Schema_change.t

val parse_statement : string -> (statement, string) result

val to_update : Schema.t -> statement -> (Update.t, string) result
(** Convert a parsed insert/delete into an update, typechecking every row
    against the schema. *)
