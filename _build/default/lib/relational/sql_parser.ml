(** Recursive-descent parser for the SQL dialect the system speaks.

    Grammar (keywords case-insensitive; [rel@source] names the hosting
    data source explicitly, since queries span many autonomous sources):

    {v
    view      ::= CREATE VIEW ident AS select | select
    select    ::= SELECT items FROM tables [WHERE conj]
    items     ::= item (',' item)*           item ::= ref [AS ident]
    tables    ::= table (',' table)*         table ::= ident '@' ident [AS ident]
    conj      ::= atom (AND atom)*           atom ::= operand op operand
    operand   ::= ref | literal              ref ::= [ident '.'] ident
    op        ::= '=' | '<>' | '<' | '<=' | '>' | '>='
    literal   ::= int | float | string | TRUE | FALSE | NULL

    statement ::= insert | delete | create_table | alter
    insert    ::= INSERT INTO ident '@' ident VALUES tuple (',' tuple)*
    delete    ::= DELETE FROM ident '@' ident VALUES tuple (',' tuple)*
    create_table ::= CREATE TABLE ident '@' ident '(' coldef (',' coldef)* ')'
    coldef    ::= ident type                 type ::= INT | FLOAT | VARCHAR | BOOLEAN
    alter     ::= ALTER SOURCE ident (RENAME TABLE ident TO ident | DROP TABLE ident)
                | ALTER TABLE ident '@' ident
                    ( RENAME COLUMN ident TO ident
                    | DROP COLUMN ident
                    | ADD COLUMN ident type DEFAULT literal )
    v}

    Inserts/deletes parse into {!Update.t} given the relation's schema
    (supplied by the caller, usually from a source catalog). *)

open Sql_lexer

exception Parse_error of string

let err fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

type state = { mutable toks : token list }

let peek st = match st.toks with [] -> EOF | t :: _ -> t

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let eat st expected =
  let t = peek st in
  if t = expected then advance st
  else err "expected %a but found %a" pp_token expected pp_token t

let eat_kw st kw = eat st (KEYWORD kw)

let ident st =
  match peek st with
  | IDENT s ->
      advance st;
      s
  | t -> err "expected an identifier, found %a" pp_token t

let literal st : Value.t =
  match peek st with
  | INT i ->
      advance st;
      Value.int i
  | FLOAT f ->
      advance st;
      Value.float f
  | STRING s ->
      advance st;
      Value.string s
  | KEYWORD "TRUE" ->
      advance st;
      Value.bool true
  | KEYWORD "FALSE" ->
      advance st;
      Value.bool false
  | KEYWORD "NULL" ->
      advance st;
      Value.null
  | t -> err "expected a literal, found %a" pp_token t

let vtype st : Value.Vtype.t =
  match peek st with
  | KEYWORD "INT" ->
      advance st;
      Value.Vtype.TInt
  | KEYWORD "FLOAT" ->
      advance st;
      Value.Vtype.TFloat
  | KEYWORD "VARCHAR" ->
      advance st;
      Value.Vtype.TString
  | KEYWORD "BOOLEAN" ->
      advance st;
      Value.Vtype.TBool
  | t -> err "expected a type, found %a" pp_token t

let attr_ref st : Attr.Qualified.t =
  let first = ident st in
  if peek st = DOT then begin
    advance st;
    let attr = ident st in
    Attr.Qualified.make ~rel:first attr
  end
  else Attr.Qualified.make first

(* rel '@' source [AS alias] *)
let table_ref st : Query.table_ref =
  let rel = ident st in
  eat st AT;
  let source = ident st in
  let alias =
    if peek st = KEYWORD "AS" then begin
      advance st;
      Some (ident st)
    end
    else None
  in
  Query.table ?alias source rel

let operand st : Predicate.operand =
  match peek st with
  | IDENT _ -> Predicate.Ref (attr_ref st)
  | _ -> Predicate.Const (literal st)

let comparison st : Predicate.op =
  match peek st with
  | EQ ->
      advance st;
      Predicate.Eq
  | NEQ ->
      advance st;
      Predicate.Ne
  | LT ->
      advance st;
      Predicate.Lt
  | LE ->
      advance st;
      Predicate.Le
  | GT ->
      advance st;
      Predicate.Gt
  | GE ->
      advance st;
      Predicate.Ge
  | t -> err "expected a comparison operator, found %a" pp_token t

let atom st : Predicate.atom =
  let lhs = operand st in
  let op = comparison st in
  let rhs = operand st in
  Predicate.atom lhs op rhs

let rec sep_by st parse =
  let x = parse st in
  if peek st = COMMA then begin
    advance st;
    x :: sep_by st parse
  end
  else [ x ]

let conjunction st =
  let rec go acc =
    let a = atom st in
    if peek st = KEYWORD "AND" then begin
      advance st;
      go (a :: acc)
    end
    else List.rev (a :: acc)
  in
  go []

let select_item st : Query.select_item =
  let expr = attr_ref st in
  let as_name =
    if peek st = KEYWORD "AS" then begin
      advance st;
      Some (ident st)
    end
    else None
  in
  { Query.expr; as_name = Option.value as_name ~default:(Attr.Qualified.attr expr) }

let select_body ~name st : Query.t =
  eat_kw st "SELECT";
  let select = sep_by st select_item in
  eat_kw st "FROM";
  let from = sep_by st table_ref in
  let where = if peek st = KEYWORD "WHERE" then (advance st; conjunction st) else [] in
  Query.make ~name ~select ~from ~where

(** [parse_view s] parses [CREATE VIEW name AS SELECT …] (or a bare
    [SELECT …], named ["query"]). *)
let parse_view (s : string) : (Query.t, string) result =
  try
    let st = { toks = tokenize s } in
    let q =
      if peek st = KEYWORD "CREATE" then begin
        advance st;
        eat_kw st "VIEW";
        let name = ident st in
        eat_kw st "AS";
        select_body ~name st
      end
      else select_body ~name:"query" st
    in
    if peek st = SEMI then advance st;
    eat st EOF;
    Ok q
  with
  | Lex_error e | Parse_error e -> Error e
  | Query.Malformed e -> Error e

(** Parsed DML/DDL statements.  Inserts/deletes carry raw value tuples —
    they become {!Update.t}s once the caller provides the relation's
    schema (see {!to_update}). *)
type statement =
  | Insert of { source : string; rel : string; rows : Value.t list list }
  | Delete of { source : string; rel : string; rows : Value.t list list }
  | Create_table of { source : string; rel : string; schema : Schema.t }
  | Alter of Schema_change.t

let tuple st =
  eat st LPAREN;
  let vs = sep_by st literal in
  eat st RPAREN;
  vs

let rel_at_source st =
  let rel = ident st in
  eat st AT;
  let source = ident st in
  (rel, source)

(** [parse_statement s] parses one DML/DDL statement. *)
let parse_statement (s : string) : (statement, string) result =
  try
    let st = { toks = tokenize s } in
    let stmt =
      match peek st with
      | KEYWORD "INSERT" ->
          advance st;
          eat_kw st "INTO";
          let rel, source = rel_at_source st in
          eat_kw st "VALUES";
          Insert { source; rel; rows = sep_by st tuple }
      | KEYWORD "DELETE" ->
          advance st;
          eat_kw st "FROM";
          let rel, source = rel_at_source st in
          eat_kw st "VALUES";
          Delete { source; rel; rows = sep_by st tuple }
      | KEYWORD "CREATE" ->
          advance st;
          eat_kw st "TABLE";
          let rel, source = rel_at_source st in
          eat st LPAREN;
          let cols =
            sep_by st (fun st ->
                let name = ident st in
                let ty = vtype st in
                Attr.make name ty)
          in
          eat st RPAREN;
          Create_table { source; rel; schema = Schema.of_list cols }
      | KEYWORD "ALTER" -> (
          advance st;
          match peek st with
          | KEYWORD "SOURCE" -> (
              advance st;
              let source = ident st in
              match peek st with
              | KEYWORD "RENAME" ->
                  advance st;
                  eat_kw st "TABLE";
                  let old_name = ident st in
                  eat_kw st "TO";
                  let new_name = ident st in
                  Alter (Schema_change.Rename_relation { source; old_name; new_name })
              | KEYWORD "DROP" ->
                  advance st;
                  eat_kw st "TABLE";
                  Alter (Schema_change.Drop_relation { source; name = ident st })
              | t -> err "expected RENAME or DROP, found %a" pp_token t)
          | KEYWORD "TABLE" -> (
              advance st;
              let rel, source = rel_at_source st in
              match peek st with
              | KEYWORD "RENAME" ->
                  advance st;
                  eat_kw st "COLUMN";
                  let old_name = ident st in
                  eat_kw st "TO";
                  let new_name = ident st in
                  Alter
                    (Schema_change.Rename_attribute { source; rel; old_name; new_name })
              | KEYWORD "DROP" ->
                  advance st;
                  eat_kw st "COLUMN";
                  Alter (Schema_change.Drop_attribute { source; rel; attr = ident st })
              | KEYWORD "ADD" ->
                  advance st;
                  eat_kw st "COLUMN";
                  let name = ident st in
                  let ty = vtype st in
                  eat_kw st "DEFAULT";
                  let default = literal st in
                  Alter
                    (Schema_change.Add_attribute
                       { source; rel; attr = Attr.make name ty; default })
              | t -> err "expected RENAME, DROP or ADD, found %a" pp_token t)
          | t -> err "expected SOURCE or TABLE, found %a" pp_token t)
      | t -> err "expected a statement, found %a" pp_token t
    in
    if peek st = SEMI then advance st;
    eat st EOF;
    Ok stmt
  with
  | Lex_error e | Parse_error e -> Error e
  | Schema.Duplicate_attribute a -> Error (Fmt.str "duplicate column %s" a)

(** [to_update schema stmt] converts a parsed insert/delete into an
    {!Update.t}, typechecking every row against [schema]. *)
let to_update (schema : Schema.t) (stmt : statement) : (Update.t, string) result
    =
  let build ~source ~rel ~sign rows =
    let delta = Relation.create schema in
    try
      List.iter
        (fun row ->
          let tup = Tuple.of_list row in
          if not (Schema.typecheck schema tup) then
            err "row %a does not match schema %a" Tuple.pp tup Schema.pp schema;
          Relation.add delta tup sign)
        rows;
      Ok (Update.make ~source ~rel delta)
    with Parse_error e -> Error e
  in
  match stmt with
  | Insert { source; rel; rows } -> build ~source ~rel ~sign:1 rows
  | Delete { source; rel; rows } -> build ~source ~rel ~sign:(-1) rows
  | Create_table _ | Alter _ -> Error "not a data update"
