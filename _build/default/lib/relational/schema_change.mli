(** Source schema changes (SC) and their composition algebra.

    {!t} is the wire-level change a source commits; {!Delta} is the
    {e net} effect of a sequence of changes on one relation — the
    Section 5 preprocessing machinery ("rename A to B" then "rename B to
    C" combines to "rename A to C"; data updates are re-projected through
    intervening changes so they merge into homogeneous deltas). *)

type t =
  | Rename_relation of { source : string; old_name : string; new_name : string }
  | Drop_relation of { source : string; name : string }
  | Add_relation of { source : string; name : string; schema : Schema.t }
  | Rename_attribute of {
      source : string;
      rel : string;
      old_name : string;
      new_name : string;
    }
  | Drop_attribute of { source : string; rel : string; attr : string }
  | Add_attribute of {
      source : string;
      rel : string;
      attr : Attr.t;
      default : Value.t;
    }

val source : t -> string

val rel : t -> string
(** The relation the change applies to, under its name {e before} the
    change. *)

val destructive : t -> bool
(** Does the change remove or rename existing metadata?  Add-only changes
    can never break an existing query. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Net effect of a sequence of schema changes on one relation. *)
module Delta : sig
  type sc := t

  (** Fate of an attribute of the original schema. *)
  type attr_fate = Kept of string  (** current (possibly new) name *) | Dropped

  type t = {
    source : string;
    old_rel : string;  (** relation name before the sequence *)
    new_rel : string option;  (** current name; [None] once dropped *)
    fates : (string * attr_fate) list;
        (** original attribute name → fate, in original order *)
    added : (Attr.t * Value.t) list;
        (** attributes added by the sequence, with their defaults *)
  }

  exception Inapplicable of string

  val identity : source:string -> rel:string -> Schema.t -> t
  val is_identity : t -> bool
  val dropped_relation : t -> bool

  val current_name : t -> string -> string option
  (** Current name of an original attribute, [None] if dropped.
      @raise Inapplicable if it never existed. *)

  val step : t -> sc -> t
  (** Extend the net delta with one more change (which must target the
      relation's current name).
      @raise Inapplicable when it does not apply. *)

  val of_changes : source:string -> rel:string -> Schema.t -> sc list -> t
  (** Fold a whole sequence from the identity delta. *)

  val apply_schema : t -> Schema.t -> Schema.t
  (** The relation's schema after the delta.
      @raise Inapplicable if dropped or the schema disagrees with the
      recorded original attributes. *)

  val project_tuple : t -> Schema.t -> Tuple.t -> Tuple.t
  (** Convert a tuple of the original schema into the post-delta schema:
      dropped positions removed, added attributes filled with defaults —
      the Section 5 homogenisation of data updates. *)

  val project_delta : t -> Schema.t -> Relation.t -> Relation.t
  (** Re-express a signed delta relation under the post-delta schema
      (multiplicities re-aggregated). *)

  val compose : t -> t -> t
  (** Apply the first, then the second (whose original relation must be
      the first one's result).
      @raise Inapplicable on a mismatch. *)

  val pp : Format.formatter -> t -> unit
end
