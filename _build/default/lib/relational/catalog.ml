(** A source-local catalog: relation name → schema, with schema-change
    application.

    One catalog instance lives inside every simulated data source; the view
    manager keeps {e stale copies} of them (that staleness is precisely what
    produces broken queries). *)

type t = { mutable rels : (string * Schema.t) list }

exception No_such_relation of string
exception Relation_exists of string

let create () = { rels = [] }

let of_list rels = { rels }

let copy c = { rels = c.rels }

let relations c = List.map fst c.rels

let mem c name = List.mem_assoc name c.rels

let schema_of c name =
  match List.assoc_opt name c.rels with
  | Some s -> s
  | None -> raise (No_such_relation name)

let schema_of_opt c name = List.assoc_opt name c.rels

let add_relation c name schema =
  if mem c name then raise (Relation_exists name);
  c.rels <- c.rels @ [ (name, schema) ]

let drop_relation c name =
  if not (mem c name) then raise (No_such_relation name);
  c.rels <- List.filter (fun (n, _) -> not (String.equal n name)) c.rels

let replace_schema c name schema =
  if not (mem c name) then raise (No_such_relation name);
  c.rels <-
    List.map
      (fun (n, s) -> if String.equal n name then (n, schema) else (n, s))
      c.rels

let rename_relation c ~old_name ~new_name =
  if not (mem c old_name) then raise (No_such_relation old_name);
  if mem c new_name && not (String.equal old_name new_name) then
    raise (Relation_exists new_name);
  c.rels <-
    List.map
      (fun (n, s) ->
        if String.equal n old_name then (new_name, s) else (n, s))
      c.rels

(** [apply c sc] mutates the catalog per one schema change.
    @raise No_such_relation / Relation_exists / Schema exceptions when the
    change does not apply (autonomous sources validate their own DDL). *)
let apply c (sc : Schema_change.t) =
  match sc with
  | Rename_relation { old_name; new_name; _ } ->
      rename_relation c ~old_name ~new_name
  | Drop_relation { name; _ } -> drop_relation c name
  | Add_relation { name; schema; _ } -> add_relation c name schema
  | Rename_attribute { rel; old_name; new_name; _ } ->
      replace_schema c rel (Schema.rename (schema_of c rel) ~old_name ~new_name)
  | Drop_attribute { rel; attr; _ } ->
      replace_schema c rel (Schema.drop (schema_of c rel) attr)
  | Add_attribute { rel; attr; _ } ->
      replace_schema c rel (Schema.add (schema_of c rel) attr)

(** [validates c sc] — would [apply] succeed?  Used by workload generators
    to only emit applicable DDL. *)
let validates c sc =
  match apply (copy c) sc with () -> true | exception _ -> false

let pp ppf c =
  Fmt.pf ppf "@[<v>%a@]"
    Fmt.(
      list ~sep:cut (fun ppf (n, s) -> Fmt.pf ppf "%s %a" n Schema.pp s))
    c.rels
