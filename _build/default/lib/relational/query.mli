(** Select–project–join queries: the view-definition language.  A query
    reads relations hosted at named sources, joins them under a
    conjunctive predicate and projects a select list. *)

type table_ref = {
  source : string;  (** data-source identifier hosting the relation *)
  rel : string;  (** relation name at that source *)
  alias : string;  (** alias used in references; defaults to [rel] *)
}

type select_item = {
  expr : Attr.Qualified.t;  (** attribute reference *)
  as_name : string;  (** output column name *)
}

type t = {
  name : string;
  select : select_item list;
  from : table_ref list;
  where : Predicate.t;
}

exception Malformed of string

val table : ?alias:string -> string -> string -> table_ref
(** [table source rel]. *)

val item : ?as_:string -> string -> select_item
(** [item "I.Author"] / [item ~as_:"Review" "R.Comments"]. *)

val make :
  name:string ->
  select:select_item list ->
  from:table_ref list ->
  where:Predicate.t ->
  t
(** @raise Malformed on an empty FROM or duplicate aliases. *)

val name : t -> string
val select : t -> select_item list
val from : t -> table_ref list
val where : t -> Predicate.t
val aliases : t -> string list
val find_table : t -> string -> table_ref option

val all_refs : t -> Attr.Qualified.t list
(** Every attribute reference anywhere in the query. *)

val sources : t -> string list
(** Distinct source ids read, in FROM order — the [DS_1 … DS_n] of the
    paper's Definition 1. *)

val tables_of_source : t -> string -> table_ref list

val mentions_relation : t -> source:string -> rel:string -> bool
(** The metadata test used when drawing concurrent-dependency edges. *)

val refs_of_alias : t -> string -> (Attr.Qualified.t -> string) -> string list
(** Attribute names of the alias used by the query; the function resolves
    unqualified references to their owning alias. *)

val mentions_attribute :
  t ->
  source:string ->
  rel:string ->
  attr:string ->
  (Attr.Qualified.t -> string) ->
  bool

(** {1 Rewriting helpers (view synchronization)} *)

val map_tables : (table_ref -> table_ref) -> t -> t
val map_refs : (Attr.Qualified.t -> Attr.Qualified.t) -> t -> t

val rename_relation : t -> source:string -> old_rel:string -> new_rel:string -> t
(** Repoints table refs; aliases (and hence references) are unchanged. *)

val rename_attribute :
  t ->
  alias:string ->
  old_name:string ->
  new_name:string ->
  (Attr.Qualified.t -> string) ->
  t
(** Rewrites references to [alias.old_name]; select-item output names
    ([as_name]) survive. *)

val pp_table : Format.formatter -> table_ref -> unit
val pp_item : Format.formatter -> select_item -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
