(** Tuples: immutable positional arrays of {!Value.t}.

    A tuple is meaningful only relative to a {!Schema.t}; all name-based
    access goes through the schema.  Tuples are used as hash-table keys by
    {!Relation}, so [equal]/[hash]/[compare] are structural. *)

type t = Value.t array

let of_list = Array.of_list
let to_list = Array.to_list
let of_array (a : Value.t array) : t = Array.copy a
let arity (t : t) = Array.length t
let get (t : t) i = t.(i)

let equal (a : t) (b : t) =
  Array.length a = Array.length b && Array.for_all2 Value.equal a b

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la && i >= lb then 0
    else if i >= la then -1
    else if i >= lb then 1
    else match Value.compare a.(i) b.(i) with 0 -> go (i + 1) | c -> c
  in
  go 0

let hash (t : t) =
  Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 t

let pp ppf (t : t) =
  Fmt.pf ppf "(%a)" Fmt.(array ~sep:(any ", ") Value.pp) t

let to_string t = Fmt.str "%a" pp t

(** [field schema t name] is name-based access via the schema. *)
let field schema (t : t) name = t.(Schema.index_of schema name)

(** [project schema t names] builds a new tuple containing [names] in the
    given order. *)
let project schema (t : t) names : t =
  Array.of_list (List.map (fun n -> field schema t n) names)

(** [project_idx t idxs] positional projection (precomputed index list),
    the hot path used by the evaluator. *)
let project_idx (t : t) idxs : t =
  Array.map (fun i -> t.(i)) idxs

(** [concat a b] juxtaposes two tuples (join product). *)
let concat (a : t) (b : t) : t = Array.append a b

(** [update_at t i v] functional single-field update. *)
let update_at (t : t) i v : t =
  let t' = Array.copy t in
  t'.(i) <- v;
  t'

(** [drop_at t i] removes position [i] (drop-attribute schema change). *)
let drop_at (t : t) i : t =
  Array.init (Array.length t - 1) (fun j -> if j < i then t.(j) else t.(j + 1))

(** [append t v] appends a value (add-attribute schema change with default). *)
let append (t : t) v : t = Array.append t [| v |]

(** First-class hashed-key module for use in [Hashtbl.Make]. *)
module Key = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Table = Hashtbl.Make (Key)
