(** SQL-flavoured rendering of queries, updates and schema changes, so
    that traces and examples read like the paper's Queries (1)–(5).
    The inverse direction (parsing) lives in {!Sql_parser}. *)

val pp_view : Format.formatter -> Query.t -> unit
(** [CREATE VIEW name AS SELECT …] — parseable back by
    {!Sql_parser.parse_view} (when the WHERE clause is non-empty). *)

val view_to_string : Query.t -> string

val pp_values : Format.formatter -> Tuple.t -> unit

val pp_update : Format.formatter -> Update.t -> unit
(** A block of INSERT/DELETE statements. *)

val update_to_string : Update.t -> string

val pp_schema_change : Format.formatter -> Schema_change.t -> unit
val schema_change_to_string : Schema_change.t -> string

val pp_relation_table : Format.formatter -> Relation.t -> unit
(** Bordered ASCII table (sorted rows), used by the examples and the CLI
    to show view extents. *)
