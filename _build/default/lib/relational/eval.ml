(** SPJ query evaluation over signed-multiset relations.

    The evaluator binds each FROM entry to a relation supplied by an
    environment, performs a left-deep pipeline of hash equi-joins with
    selection push-down, applies residual predicates, and projects the
    select list.  It is deliberately free of any source/distribution
    concerns — the distributed decomposition lives in [Dyno_vm]; this module
    is also what each simulated {e source server} runs locally to answer
    maintenance queries. *)

exception Error of string

let err fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

(** A binding: alias bound to a relation, its original schema kept for
    name resolution (joined schemas may have suffix-renamed columns, but
    positions are stable). *)
type binding = { alias : string; schema : Schema.t; offset : int }

type binder = {
  bindings : binding list;
  owner : Attr.Qualified.t -> string;  (** owning alias of an unqualified ref *)
}

(** [make_binder q schemas] resolves reference ownership for query [q] given
    the schema of each alias.  @raise Error on unknown or ambiguous refs. *)
let make_binder (q : Query.t) (schemas : (string * Schema.t) list) =
  let bindings =
    let rec go offset acc = function
      | [] -> List.rev acc
      | (tr : Query.table_ref) :: rest ->
          let schema =
            match List.assoc_opt tr.alias schemas with
            | Some s -> s
            | None -> err "no schema bound for alias %s" tr.alias
          in
          go
            (offset + Schema.arity schema)
            ({ alias = tr.alias; schema; offset } :: acc)
            rest
    in
    go 0 [] (Query.from q)
  in
  let owner (r : Attr.Qualified.t) =
    let attr = Attr.Qualified.attr r in
    match
      List.filter (fun b -> Schema.mem b.schema attr) bindings
    with
    | [ b ] -> b.alias
    | [] -> err "unknown attribute %s" attr
    | bs ->
        err "ambiguous attribute %s (in %s)" attr
          (String.concat ", " (List.map (fun b -> b.alias) bs))
  in
  { bindings; owner }

(** [resolve binder r] is the absolute position of reference [r] in the
    join-product tuple. *)
let resolve binder (r : Attr.Qualified.t) =
  let alias =
    match Attr.Qualified.rel r with
    | Some a -> a
    | None -> binder.owner r
  in
  match List.find_opt (fun b -> String.equal b.alias alias) binder.bindings with
  | None -> err "unknown alias %s in reference %a" alias Attr.Qualified.pp r
  | Some b -> (
      match Schema.index_of_opt b.schema (Attr.Qualified.attr r) with
      | Some i -> b.offset + i
      | None ->
          err "relation %s has no attribute %s" alias (Attr.Qualified.attr r))

(** [resolve_in_alias binder alias attr] is the position of [attr] within
    the single relation bound to [alias] (not the join product). *)
let resolve_in_alias binder alias attr =
  match List.find_opt (fun b -> String.equal b.alias alias) binder.bindings with
  | None -> err "unknown alias %s" alias
  | Some b -> (
      match Schema.index_of_opt b.schema attr with
      | Some i -> i
      | None -> err "relation %s has no attribute %s" alias attr)

(* Positional hash join: join [left] (arbitrary join-product schema) with
   [right] on (left position, right position) pairs.  The smaller side is
   hashed and the larger streamed — maintenance probes typically join a
   partial result of a handful of tuples against a large base relation, so
   this keeps the per-probe cost at one pass with cheap lookups. *)
let positional_join left right (pairs : (int * int) list) =
  let lpos = Array.of_list (List.map fst pairs) in
  let rpos = Array.of_list (List.map snd pairs) in
  let schema' = Schema.concat (Relation.schema left) (Relation.schema right) in
  let out = Relation.create schema' in
  let hash_left = Relation.support left <= Relation.support right in
  let build, build_pos, stream, stream_pos =
    if hash_left then (left, lpos, right, rpos) else (right, rpos, left, lpos)
  in
  let index = Tuple.Table.create (max 16 (Relation.support build)) in
  Relation.iter
    (fun t c ->
      let key = Tuple.project_idx t build_pos in
      let prev = Option.value ~default:[] (Tuple.Table.find_opt index key) in
      Tuple.Table.replace index key ((t, c) :: prev))
    build;
  Relation.iter
    (fun t c ->
      let key = Tuple.project_idx t stream_pos in
      match Tuple.Table.find_opt index key with
      | None -> ()
      | Some matches ->
          List.iter
            (fun (t', c') ->
              (* Output order is always (left, right). *)
              let tup =
                if hash_left then Tuple.concat t' t else Tuple.concat t t'
              in
              Relation.add out tup (c * c'))
            matches)
    stream;
  out

(** [query env q] evaluates [q], resolving each FROM entry with
    [env : table_ref -> Relation.t].
    @raise Error on binding or resolution failure. *)
let query (env : Query.table_ref -> Relation.t) (q : Query.t) =
  let tables =
    List.map (fun (tr : Query.table_ref) -> (tr, env tr)) (Query.from q)
  in
  let schemas =
    List.map (fun ((tr : Query.table_ref), r) -> (tr.alias, Relation.schema r)) tables
  in
  let binder = make_binder q schemas in
  let owner r = binder.owner r in
  let local, global = Predicate.partition_by_alias owner (Query.where q) in
  let join_pairs = Predicate.equijoin_pairs owner global in
  (* Residual global atoms: non-equijoin cross-alias conditions. *)
  let residual =
    List.filter
      (fun (a : Predicate.atom) ->
        match (a.op, a.lhs, a.rhs) with
        | Predicate.Eq, Predicate.Ref x, Predicate.Ref y ->
            let ax = match Attr.Qualified.rel x with Some r -> r | None -> owner x in
            let ay = match Attr.Qualified.rel y with Some r -> r | None -> owner y in
            String.equal ax ay
        | _ -> true)
      global
  in
  (* Per-alias selection push-down. *)
  let filter_local (tr : Query.table_ref) rel =
    let mine =
      List.filter
        (fun (a : Predicate.atom) ->
          List.exists
            (fun (r : Attr.Qualified.t) ->
              let al = match Attr.Qualified.rel r with Some x -> x | None -> owner r in
              String.equal al tr.alias)
            (Predicate.refs [ a ]))
        local
    in
    if mine = [] then rel
    else
      let res r = resolve_in_alias binder tr.alias (Attr.Qualified.attr r) in
      Relation.select (fun t -> Predicate.eval res mine t) rel
  in
  let joined =
    match tables with
    | [] -> err "empty FROM"
    | (tr0, r0) :: rest ->
        let acc = ref (filter_local tr0 r0) in
        let bound = ref [ tr0.alias ] in
        List.iter
          (fun ((tr : Query.table_ref), r) ->
            let r = filter_local tr r in
            let pairs =
              List.filter_map
                (fun ((ax, qx), (ay, qy)) ->
                  let pos_in_acc qa = resolve binder qa in
                  let pos_in_new qa =
                    resolve_in_alias binder tr.alias (Attr.Qualified.attr qa)
                  in
                  if List.mem ax !bound && String.equal ay tr.alias then
                    Some (pos_in_acc qx, pos_in_new qy)
                  else if List.mem ay !bound && String.equal ax tr.alias then
                    Some (pos_in_acc qy, pos_in_new qx)
                  else None)
                join_pairs
            in
            acc :=
              (if pairs = [] then Relation.product !acc r
               else positional_join !acc r pairs);
            bound := tr.alias :: !bound)
          rest;
        !acc
  in
  (* Residual predicate. *)
  let joined =
    if residual = [] then joined
    else
      Relation.select
        (fun t -> Predicate.eval (resolve binder) residual t)
        joined
  in
  (* Final projection with output names and types. *)
  let out_attrs =
    List.map
      (fun (it : Query.select_item) ->
        let pos = resolve binder it.expr in
        let alias =
          match Attr.Qualified.rel it.expr with
          | Some a -> a
          | None -> owner it.expr
        in
        let b = List.find (fun b -> String.equal b.alias alias) binder.bindings in
        let src_attr = Schema.find b.schema (Attr.Qualified.attr it.expr) in
        (pos, Attr.make it.as_name (Attr.ty src_attr)))
      (Query.select q)
  in
  let out_schema = Schema.of_list (List.map snd out_attrs) in
  let idxs = Array.of_list (List.map fst out_attrs) in
  Relation.map_tuples out_schema (fun t -> Tuple.project_idx t idxs) joined

(** [query_assoc env q] convenience wrapper: environment given as an
    association list keyed by alias. *)
let query_assoc (env : (string * Relation.t) list) (q : Query.t) =
  query
    (fun tr ->
      match List.assoc_opt tr.alias env with
      | Some r -> r
      | None -> err "no relation bound for alias %s" tr.alias)
    q
