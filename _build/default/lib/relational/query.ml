(** Select–project–join queries: the view-definition language.

    A query reads relations hosted at named sources (the [source] field of a
    {!table_ref} identifies the data source, as in the paper's
    [r(DS_1)…r(DS_n)] decomposition), joins them under a conjunctive
    predicate and projects a select list. *)

type table_ref = {
  source : string;  (** data-source identifier hosting the relation *)
  rel : string;  (** relation name at that source *)
  alias : string;  (** alias used in references; defaults to [rel] *)
}

type select_item = {
  expr : Attr.Qualified.t;  (** attribute reference *)
  as_name : string;  (** output column name *)
}

type t = {
  name : string;  (** view / query name *)
  select : select_item list;
  from : table_ref list;
  where : Predicate.t;
}

exception Malformed of string

let table ?alias source rel =
  { source; rel; alias = Option.value alias ~default:rel }

let item ?as_ expr_s =
  let expr = Attr.Qualified.of_string expr_s in
  { expr; as_name = Option.value as_ ~default:(Attr.Qualified.attr expr) }

let make ~name ~select ~from ~where =
  if from = [] then raise (Malformed "empty FROM clause");
  let aliases = List.map (fun tr -> tr.alias) from in
  let sorted = List.sort String.compare aliases in
  let rec dup = function
    | a :: (b :: _ as rest) ->
        if String.equal a b then Some a else dup rest
    | _ -> None
  in
  (match dup sorted with
  | Some a -> raise (Malformed ("duplicate alias " ^ a))
  | None -> ());
  { name; select; from; where }

let name q = q.name
let select q = q.select
let from q = q.from
let where q = q.where

let aliases q = List.map (fun tr -> tr.alias) q.from

let find_table q alias =
  List.find_opt (fun tr -> String.equal tr.alias alias) q.from

(** Every attribute reference appearing anywhere in the query. *)
let all_refs q =
  List.map (fun it -> it.expr) q.select @ Predicate.refs q.where

(** [sources q] is the distinct list of source ids read by the query, in
    FROM order — the [DS_1 … DS_n] of Definition 1. *)
let sources q =
  List.fold_left
    (fun acc tr -> if List.mem tr.source acc then acc else acc @ [ tr.source ])
    [] q.from

(** [tables_of_source q ds] is the table refs hosted at source [ds]. *)
let tables_of_source q ds =
  List.filter (fun tr -> String.equal tr.source ds) q.from

(** [mentions_relation q ~source ~rel] holds when the query reads [rel] at
    [source] — the metadata test used when drawing concurrent-dependency
    edges (Section 4.1.1). *)
let mentions_relation q ~source ~rel =
  List.exists
    (fun tr -> String.equal tr.source source && String.equal tr.rel rel)
    q.from

(** [refs_of_alias q alias resolve_owner] is the attribute names of [alias]
    used by the query.  [resolve_owner] maps an unqualified reference to its
    owning alias (supplied by the binder, which knows the schemas). *)
let refs_of_alias q alias owner =
  List.filter_map
    (fun (r : Attr.Qualified.t) ->
      let a =
        match Attr.Qualified.rel r with Some x -> x | None -> owner r
      in
      if String.equal a alias then Some (Attr.Qualified.attr r) else None)
    (all_refs q)

(** [mentions_attribute q ~source ~rel ~attr owner] holds when the query
    uses attribute [attr] of relation [rel] at [source]. *)
let mentions_attribute q ~source ~rel ~attr owner =
  List.exists
    (fun tr ->
      String.equal tr.source source
      && String.equal tr.rel rel
      && List.exists (String.equal attr) (refs_of_alias q tr.alias owner))
    q.from

(** Rewriting helpers used by view synchronization. *)

let map_tables f q = { q with from = List.map f q.from }

let map_refs f q =
  {
    q with
    select = List.map (fun it -> { it with expr = f it.expr }) q.select;
    where = Predicate.map_refs f q.where;
  }

(** [rename_relation q ~source ~old_rel ~new_rel] repoints table refs; the
    alias is kept, so references need no rewriting. *)
let rename_relation q ~source ~old_rel ~new_rel =
  map_tables
    (fun tr ->
      if String.equal tr.source source && String.equal tr.rel old_rel then
        { tr with rel = new_rel }
      else tr)
    q

(** [rename_attribute q ~alias ~old_name ~new_name] rewrites references to
    [alias.old_name].  Unqualified refs are rewritten when [owner] says they
    belong to [alias]. *)
let rename_attribute q ~alias ~old_name ~new_name owner =
  map_refs
    (fun r ->
      let owner_alias =
        match Attr.Qualified.rel r with Some x -> x | None -> owner r
      in
      if String.equal owner_alias alias
         && String.equal (Attr.Qualified.attr r) old_name
      then Attr.Qualified.make ?rel:(Attr.Qualified.rel r) new_name
      else r)
    q

let pp_table ppf tr =
  if String.equal tr.rel tr.alias then
    Fmt.pf ppf "%s@%s" tr.rel tr.source
  else Fmt.pf ppf "%s@%s AS %s" tr.rel tr.source tr.alias

let pp_item ppf it =
  if String.equal (Attr.Qualified.attr it.expr) it.as_name then
    Attr.Qualified.pp ppf it.expr
  else Fmt.pf ppf "%a AS %s" Attr.Qualified.pp it.expr it.as_name

let pp ppf q =
  Fmt.pf ppf "@[<v2>SELECT %a@,FROM %a@,WHERE %a@]"
    Fmt.(list ~sep:(any ", ") pp_item)
    q.select
    Fmt.(list ~sep:(any ", ") pp_table)
    q.from Predicate.pp q.where

let to_string q = Fmt.str "%a" pp q
