(** Hand-written lexer for the SQL dialect of {!Sql_parser}.

    Tokens cover exactly what view definitions (Queries (1)–(5)), DML and
    DDL statements need: identifiers (optionally qualified and
    [@source]-annotated at the parser level), integer/float/string
    literals, comparison operators, punctuation and a fixed keyword set.
    Keywords are case-insensitive; identifiers are case-sensitive. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | KEYWORD of string  (** uppercased *)
  | COMMA
  | DOT
  | AT
  | LPAREN
  | RPAREN
  | STAR
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | SEMI
  | EOF

exception Lex_error of string

let keywords =
  [
    "CREATE"; "VIEW"; "TABLE"; "AS"; "SELECT"; "FROM"; "WHERE"; "AND";
    "INSERT"; "INTO"; "VALUES"; "DELETE"; "ALTER"; "SOURCE"; "RENAME";
    "DROP"; "ADD"; "COLUMN"; "TO"; "DEFAULT"; "INT"; "FLOAT"; "VARCHAR";
    "BOOLEAN"; "TRUE"; "FALSE"; "NULL";
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let pp_token ppf = function
  | IDENT s -> Fmt.pf ppf "identifier %s" s
  | INT i -> Fmt.pf ppf "integer %d" i
  | FLOAT f -> Fmt.pf ppf "float %g" f
  | STRING s -> Fmt.pf ppf "string '%s'" s
  | KEYWORD k -> Fmt.pf ppf "keyword %s" k
  | COMMA -> Fmt.string ppf "','"
  | DOT -> Fmt.string ppf "'.'"
  | AT -> Fmt.string ppf "'@'"
  | LPAREN -> Fmt.string ppf "'('"
  | RPAREN -> Fmt.string ppf "')'"
  | STAR -> Fmt.string ppf "'*'"
  | EQ -> Fmt.string ppf "'='"
  | NEQ -> Fmt.string ppf "'<>'"
  | LT -> Fmt.string ppf "'<'"
  | LE -> Fmt.string ppf "'<='"
  | GT -> Fmt.string ppf "'>'"
  | GE -> Fmt.string ppf "'>='"
  | SEMI -> Fmt.string ppf "';'"
  | EOF -> Fmt.string ppf "end of input"

(** [tokenize s] lexes the whole input.
    @raise Lex_error on malformed input. *)
let tokenize (s : string) : token list =
  let n = String.length s in
  let toks = ref [] in
  let emit t = toks := t :: !toks in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char s.[!i] do incr i done;
      let word = String.sub s start (!i - start) in
      let upper = String.uppercase_ascii word in
      if List.mem upper keywords then emit (KEYWORD upper) else emit (IDENT word)
    end
    else if is_digit c || (c = '-' && !i + 1 < n && is_digit s.[!i + 1]) then begin
      let start = !i in
      if c = '-' then incr i;
      while !i < n && is_digit s.[!i] do incr i done;
      if !i < n && s.[!i] = '.' then begin
        incr i;
        while !i < n && is_digit s.[!i] do incr i done;
        emit (FLOAT (float_of_string (String.sub s start (!i - start))))
      end
      else emit (INT (int_of_string (String.sub s start (!i - start))))
    end
    else if c = '\'' then begin
      (* string literal; '' escapes a quote *)
      incr i;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while (not !closed) && !i < n do
        if s.[!i] = '\'' then
          if !i + 1 < n && s.[!i + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        else begin
          Buffer.add_char buf s.[!i];
          incr i
        end
      done;
      if not !closed then raise (Lex_error "unterminated string literal");
      emit (STRING (Buffer.contents buf))
    end
    else begin
      (match c with
      | ',' -> emit COMMA
      | '.' -> emit DOT
      | '@' -> emit AT
      | '(' -> emit LPAREN
      | ')' -> emit RPAREN
      | '*' -> emit STAR
      | ';' -> emit SEMI
      | '=' -> emit EQ
      | '<' ->
          if !i + 1 < n && s.[!i + 1] = '>' then begin
            emit NEQ;
            incr i
          end
          else if !i + 1 < n && s.[!i + 1] = '=' then begin
            emit LE;
            incr i
          end
          else emit LT
      | '>' ->
          if !i + 1 < n && s.[!i + 1] = '=' then begin
            emit GE;
            incr i
          end
          else emit GT
      | c -> raise (Lex_error (Fmt.str "unexpected character %C" c)));
      incr i
    end
  done;
  List.rev (EOF :: !toks)
