(** Hand-written lexer for the SQL dialect of {!Sql_parser}: identifiers,
    integer/float/string literals (['' ] escapes a quote), comparison
    operators, punctuation and a fixed case-insensitive keyword set. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | KEYWORD of string  (** uppercased *)
  | COMMA
  | DOT
  | AT
  | LPAREN
  | RPAREN
  | STAR
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | SEMI
  | EOF

exception Lex_error of string

val keywords : string list

val pp_token : Format.formatter -> token -> unit

val tokenize : string -> token list
(** Lex the whole input (ends with [EOF]).
    @raise Lex_error on malformed input. *)
