(** Source schema changes (SC) and their composition algebra.

    The paper's Section 5 preprocessing combines consecutive schema changes
    ("rename A to B" then "rename B to C" becomes "rename A to C") and
    re-projects data updates committed between them.  {!t} is the wire-level
    change; {!Delta} is the {e net} effect of a sequence of changes on one
    relation, with [apply]/[compose]/tuple-projection operations. *)

type t =
  | Rename_relation of { source : string; old_name : string; new_name : string }
  | Drop_relation of { source : string; name : string }
  | Add_relation of { source : string; name : string; schema : Schema.t }
  | Rename_attribute of {
      source : string;
      rel : string;
      old_name : string;
      new_name : string;
    }
  | Drop_attribute of { source : string; rel : string; attr : string }
  | Add_attribute of {
      source : string;
      rel : string;
      attr : Attr.t;
      default : Value.t;
    }

let source = function
  | Rename_relation { source; _ }
  | Drop_relation { source; _ }
  | Add_relation { source; _ }
  | Rename_attribute { source; _ }
  | Drop_attribute { source; _ }
  | Add_attribute { source; _ } ->
      source

(** The relation the change applies to (its name {e before} the change). *)
let rel = function
  | Rename_relation { old_name; _ } -> old_name
  | Drop_relation { name; _ } -> name
  | Add_relation { name; _ } -> name
  | Rename_attribute { rel; _ } | Drop_attribute { rel; _ }
  | Add_attribute { rel; _ } ->
      rel

(** Does this change remove or rename metadata (as opposed to only adding
    new metadata)?  Add-only changes can never break an existing query. *)
let destructive = function
  | Add_relation _ | Add_attribute _ -> false
  | Rename_relation _ | Drop_relation _ | Rename_attribute _
  | Drop_attribute _ ->
      true

let pp ppf = function
  | Rename_relation { source; old_name; new_name } ->
      Fmt.pf ppf "ALTER SOURCE %s RENAME TABLE %s TO %s" source old_name
        new_name
  | Drop_relation { source; name } ->
      Fmt.pf ppf "ALTER SOURCE %s DROP TABLE %s" source name
  | Add_relation { source; name; schema } ->
      Fmt.pf ppf "ALTER SOURCE %s ADD TABLE %s %a" source name Schema.pp schema
  | Rename_attribute { source; rel; old_name; new_name } ->
      Fmt.pf ppf "ALTER TABLE %s@%s RENAME COLUMN %s TO %s" rel source old_name
        new_name
  | Drop_attribute { source; rel; attr } ->
      Fmt.pf ppf "ALTER TABLE %s@%s DROP COLUMN %s" rel source attr
  | Add_attribute { source; rel; attr; default } ->
      Fmt.pf ppf "ALTER TABLE %s@%s ADD COLUMN %a DEFAULT %a" rel source
        Attr.pp attr Value.pp default

let to_string sc = Fmt.str "%a" pp sc

(** Net effect of a sequence of schema changes on {e one} relation. *)
module Delta = struct
  (** Fate of an attribute of the original schema. *)
  type attr_fate =
    | Kept of string  (** survives, under its current (possibly new) name *)
    | Dropped

  type nonrec t = {
    source : string;
    old_rel : string;  (** relation name before the sequence *)
    new_rel : string option;  (** current name; [None] once dropped *)
    fates : (string * attr_fate) list;
        (** original attribute name -> fate, in original schema order *)
    added : (Attr.t * Value.t) list;
        (** attributes added by the sequence (current names), with defaults *)
  }

  exception Inapplicable of string

  let err fmt = Fmt.kstr (fun s -> raise (Inapplicable s)) fmt

  (** Identity delta for relation [rel] with schema [schema] at [source]. *)
  let identity ~source ~rel schema =
    {
      source;
      old_rel = rel;
      new_rel = Some rel;
      fates = List.map (fun a -> (Attr.name a, Kept (Attr.name a))) (Schema.attrs schema);
      added = [];
    }

  let is_identity d =
    (match d.new_rel with
    | Some n -> String.equal n d.old_rel
    | None -> false)
    && d.added = []
    && List.for_all
         (fun (o, f) -> match f with Kept n -> String.equal o n | Dropped -> false)
         d.fates

  let dropped_relation d = d.new_rel = None

  (** [current_name d old] maps an original attribute name to its current
      name, or [None] if dropped.  Raises if [old] was never part of the
      relation. *)
  let current_name d old =
    match List.assoc_opt old d.fates with
    | Some (Kept n) -> Some n
    | Some Dropped -> None
    | None -> err "attribute %s not in original schema of %s" old d.old_rel

  (** [step d sc] extends the net delta with one more change.  The change
      must target the relation's {e current} name.
      @raise Inapplicable when it does not apply. *)
  let step d sc =
    let cur =
      match d.new_rel with
      | Some n -> n
      | None -> err "relation %s has been dropped" d.old_rel
    in
    if not (String.equal (source sc) d.source) then
      err "schema change targets source %s, delta is at %s" (source sc)
        d.source;
    (* Current names of live attributes: fates' Kept names + added names. *)
    let live_names =
      List.filter_map
        (fun (_, f) -> match f with Kept n -> Some n | Dropped -> None)
        d.fates
      @ List.map (fun (a, _) -> Attr.name a) d.added
    in
    let has name = List.exists (String.equal name) live_names in
    match sc with
    | Rename_relation { old_name; new_name; _ } ->
        if not (String.equal old_name cur) then
          err "rename of %s does not apply to %s" old_name cur;
        { d with new_rel = Some new_name }
    | Drop_relation { name; _ } ->
        if not (String.equal name cur) then
          err "drop of %s does not apply to %s" name cur;
        { d with new_rel = None }
    | Add_relation _ -> err "add-relation does not apply to an existing delta"
    | Rename_attribute { rel; old_name; new_name; _ } ->
        if not (String.equal rel cur) then
          err "change targets %s, relation is now %s" rel cur;
        if not (has old_name) then err "no live attribute %s" old_name;
        if has new_name && not (String.equal old_name new_name) then
          err "attribute %s already exists" new_name;
        let fates =
          List.map
            (fun (o, f) ->
              match f with
              | Kept n when String.equal n old_name -> (o, Kept new_name)
              | _ -> (o, f))
            d.fates
        in
        let added =
          List.map
            (fun (a, v) ->
              if String.equal (Attr.name a) old_name then
                (Attr.rename a new_name, v)
              else (a, v))
            d.added
        in
        { d with fates; added }
    | Drop_attribute { rel; attr; _ } ->
        if not (String.equal rel cur) then
          err "change targets %s, relation is now %s" rel cur;
        if not (has attr) then err "no live attribute %s" attr;
        let in_added =
          List.exists (fun (a, _) -> String.equal (Attr.name a) attr) d.added
        in
        if in_added then
          {
            d with
            added =
              List.filter
                (fun (a, _) -> not (String.equal (Attr.name a) attr))
                d.added;
          }
        else
          let fates =
            List.map
              (fun (o, f) ->
                match f with
                | Kept n when String.equal n attr -> (o, Dropped)
                | _ -> (o, f))
              d.fates
          in
          { d with fates }
    | Add_attribute { rel; attr; default; _ } ->
        if not (String.equal rel cur) then
          err "change targets %s, relation is now %s" rel cur;
        if has (Attr.name attr) then
          err "attribute %s already exists" (Attr.name attr);
        { d with added = d.added @ [ (attr, default) ] }

  (** [of_changes ~source ~rel schema scs] folds a whole sequence. *)
  let of_changes ~source ~rel schema scs =
    List.fold_left step (identity ~source ~rel schema) scs

  (** [apply_schema d old_schema] is the relation's schema after the delta.
      @raise Inapplicable if the relation was dropped or [old_schema]
      disagrees with the recorded original attributes. *)
  let apply_schema d old_schema =
    if dropped_relation d then err "relation %s has been dropped" d.old_rel;
    let names = Schema.names old_schema in
    if not (List.equal String.equal names (List.map fst d.fates)) then
      err "schema %a does not match delta origin" Schema.pp old_schema;
    let kept =
      List.filter_map
        (fun a ->
          match List.assoc (Attr.name a) d.fates with
          | Kept n -> Some (Attr.rename a n)
          | Dropped -> None)
        (Schema.attrs old_schema)
    in
    Schema.of_list (kept @ List.map fst d.added)

  (** [project_tuple d old_schema tup] converts a tuple of the original
      schema into the post-delta schema: dropped positions removed, added
      attributes filled with their defaults.  This is exactly the Section 5
      homogenisation of data updates ("insert (3,4)", "drop first
      attribute", "insert (5)" → "insert (4),(5)"). *)
  let project_tuple d old_schema (tup : Tuple.t) : Tuple.t =
    if dropped_relation d then err "relation %s has been dropped" d.old_rel;
    ignore old_schema;
    let kept_positions =
      d.fates
      |> List.mapi (fun i (_, f) -> (i, f))
      |> List.filter_map (fun (i, f) ->
             match f with Kept _ -> Some i | Dropped -> None)
    in
    let base = Array.of_list (List.map (fun i -> Tuple.get tup i) kept_positions) in
    Array.append base (Array.of_list (List.map snd d.added))

  (** [project_delta d old_schema r] re-expresses a signed delta relation
      under the post-delta schema (multiplicities re-aggregated). *)
  let project_delta d old_schema r =
    let schema' = apply_schema d old_schema in
    Relation.map_tuples schema' (fun t -> project_tuple d old_schema t) r

  (** [compose d1 d2]: apply [d1] then [d2] ([d2]'s original relation must be
      [d1]'s result). *)
  let compose d1 d2 =
    if dropped_relation d1 then d1
    else begin
      (match d1.new_rel with
      | Some n when String.equal n d2.old_rel -> ()
      | _ -> err "compose: name mismatch (%s then %s)" d1.old_rel d2.old_rel);
      let fate_after name =
        (* fate of a *current* d1 name under d2 *)
        match List.assoc_opt name d2.fates with
        | Some f -> f
        | None -> err "compose: %s unknown to second delta" name
      in
      let fates =
        List.map
          (fun (o, f) ->
            match f with
            | Dropped -> (o, Dropped)
            | Kept n -> (o, fate_after n))
          d1.fates
      in
      let added1 =
        List.filter_map
          (fun (a, v) ->
            match fate_after (Attr.name a) with
            | Kept n -> Some (Attr.rename a n, v)
            | Dropped -> None)
          d1.added
      in
      {
        source = d1.source;
        old_rel = d1.old_rel;
        new_rel = d2.new_rel;
        fates;
        added = added1 @ d2.added;
      }
    end

  let pp ppf d =
    let pp_fate ppf (o, f) =
      match f with
      | Kept n when String.equal o n -> Fmt.pf ppf "%s" o
      | Kept n -> Fmt.pf ppf "%s->%s" o n
      | Dropped -> Fmt.pf ppf "%s->⊥" o
    in
    Fmt.pf ppf "@[<h>%s: %s -> %s [%a]%a@]" d.source d.old_rel
      (match d.new_rel with Some n -> n | None -> "⊥")
      Fmt.(list ~sep:(any "; ") pp_fate)
      d.fates
      (fun ppf added ->
        if added <> [] then
          Fmt.pf ppf " +[%a]"
            Fmt.(list ~sep:(any "; ") (fun ppf (a, v) ->
                     Fmt.pf ppf "%a=%a" Attr.pp a Value.pp v))
            added)
      d.added
end
