(** Tuples: immutable positional arrays of {!Value.t}.  Meaningful only
    relative to a {!Schema.t}; used as hash-table keys by {!Relation}. *)

type t = Value.t array

val of_list : Value.t list -> t
val to_list : t -> Value.t list
val of_array : Value.t array -> t
val arity : t -> int
val get : t -> int -> Value.t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val field : Schema.t -> t -> string -> Value.t
(** Name-based access via the schema. *)

val project : Schema.t -> t -> string list -> t
(** Name-based projection, in the given order. *)

val project_idx : t -> int array -> t
(** Positional projection with precomputed indices (the hot path). *)

val concat : t -> t -> t
(** Juxtaposition (join product). *)

val update_at : t -> int -> Value.t -> t
val drop_at : t -> int -> t
val append : t -> Value.t -> t

(** Hashed-key module for [Hashtbl.Make]. *)
module Key : sig
  type nonrec t = t

  val equal : t -> t -> bool
  val hash : t -> int
end

module Table : Hashtbl.S with type key = t
