(** Attributes: a name plus a declared type; and qualified attribute
    references as written in queries. *)

type t

val make : string -> Value.Vtype.t -> t
val name : t -> string
val ty : t -> Value.Vtype.t
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val rename : t -> string -> t
(** Same type, new name. *)

(** Shorthand constructors. *)

val int : string -> t
val float : string -> t
val string : string -> t
val bool : string -> t

(** A possibly relation-qualified attribute reference, e.g. [I.Author]
    versus plain [Author].  [rel] is a relation alias. *)
module Qualified : sig
  type t

  val make : ?rel:string -> string -> t
  val rel : t -> string option
  val attr : t -> string
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
  val to_string : t -> string

  val of_string : string -> t
  (** ["R.A"] parses as qualified, ["A"] as unqualified. *)
end
