(** Source data updates (DU): a signed delta against one relation at one
    source.

    A DU carries the delta as a signed multiset (insertions positive,
    deletions negative) plus the schema the delta was expressed against —
    needed by the batch preprocessing of Section 5, which must re-project
    deltas when schema changes intervene between data updates. *)

type t = {
  source : string;  (** data source committing the update *)
  rel : string;  (** relation name at commit time *)
  delta : Relation.t;  (** signed multiset of changed tuples *)
}

let make ~source ~rel delta = { source; rel; delta }

let source u = u.source
let rel u = u.rel
let delta u = u.delta
let schema u = Relation.schema u.delta

(** Single-tuple insert/delete constructors. *)
let insert ~source ~rel schema tup =
  let d = Relation.create schema in
  Relation.add d (Tuple.of_list tup) 1;
  { source; rel; delta = d }

let delete ~source ~rel schema tup =
  let d = Relation.create schema in
  Relation.add d (Tuple.of_list tup) (-1);
  { source; rel; delta = d }

(** Number of elementary tuple changes carried (absolute mass). *)
let size u = Relation.mass u.delta

let pp ppf u =
  Fmt.pf ppf "@[<v2>DU %s@%s:@,%a@]" u.rel u.source Relation.pp u.delta

let to_string u = Fmt.str "%a" pp u

(** [merge a b] concatenates two deltas to the same relation (later one
    second).  @raise Relation.Schema_mismatch if schemas differ — callers
    must re-project first (see [Dyno_va.Batch]). *)
let merge a b =
  if not (String.equal a.source b.source && String.equal a.rel b.rel) then
    invalid_arg "Update.merge: different relations";
  { a with delta = Relation.sum a.delta b.delta }
