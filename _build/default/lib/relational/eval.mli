(** SPJ query evaluation over signed-multiset relations: a left-deep
    pipeline of hash equi-joins with selection push-down, residual
    predicates and final projection.  Also what each simulated source
    server runs locally to answer maintenance queries. *)

exception Error of string

(** Name-resolution context: aliases bound to relations, with original
    schemas kept (joined schemas may suffix-rename clashing columns, but
    positions are stable). *)
type binding = { alias : string; schema : Schema.t; offset : int }

type binder = {
  bindings : binding list;
  owner : Attr.Qualified.t -> string;
      (** owning alias of an unqualified reference *)
}

val make_binder : Query.t -> (string * Schema.t) list -> binder
(** @raise Error on unknown or ambiguous references. *)

val resolve : binder -> Attr.Qualified.t -> int
(** Absolute position of a reference in the join-product tuple. *)

val resolve_in_alias : binder -> string -> string -> int
(** Position of an attribute within a single bound relation. *)

val positional_join : Relation.t -> Relation.t -> (int * int) list -> Relation.t
(** Hash join on (left position, right position) pairs; the smaller side
    is hashed.  Output schema is [Schema.concat left right]. *)

val query : (Query.table_ref -> Relation.t) -> Query.t -> Relation.t
(** Evaluate, resolving each FROM entry through the environment.
    @raise Error on binding or resolution failure — the relational-level
    face of a broken query. *)

val query_assoc : (string * Relation.t) list -> Query.t -> Relation.t
(** Environment given as an association list keyed by alias. *)
