(** Source data updates (DU): a signed delta against one relation at one
    source, expressed in the relation's schema at commit time. *)

type t

val make : source:string -> rel:string -> Relation.t -> t
val source : t -> string
val rel : t -> string

val delta : t -> Relation.t
(** Signed multiset: insertions positive, deletions negative. *)

val schema : t -> Schema.t
(** The schema the delta was expressed against (needed by Section 5 batch
    preprocessing to re-project across interleaved schema changes). *)

val insert : source:string -> rel:string -> Schema.t -> Value.t list -> t
val delete : source:string -> rel:string -> Schema.t -> Value.t list -> t

val size : t -> int
(** Number of elementary tuple changes (absolute mass). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val merge : t -> t -> t
(** Concatenate two deltas to the same relation.
    @raise Invalid_argument when sources/relations differ.
    @raise Relation.Schema_mismatch when schemas differ. *)
