(** Relation schemas: an ordered list of distinctly-named attributes.
    Order matters — tuples are positional — so the schema is the single
    authority for translating attribute names to positions. *)

type t

exception Duplicate_attribute of string
exception No_such_attribute of string

val of_list : Attr.t list -> t
(** @raise Duplicate_attribute on a repeated name. *)

val attrs : t -> Attr.t list
val arity : t -> int
val attr_at : t -> int -> Attr.t
val names : t -> string list
val mem : t -> string -> bool

val index_of : t -> string -> int
(** @raise No_such_attribute when absent. *)

val index_of_opt : t -> string -> int option

val find : t -> string -> Attr.t
(** @raise No_such_attribute when absent. *)

val find_opt : t -> string -> Attr.t option

val equal : t -> t -> bool
(** Same attributes in the same order. *)

val equivalent : t -> t -> bool
(** Same attributes regardless of order. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Schema surgery — the primitives schema changes are built from} *)

val project : t -> string list -> t
(** Keep exactly the named attributes, in the given order.
    @raise No_such_attribute when a name is absent. *)

val drop : t -> string -> t
(** @raise No_such_attribute when absent. *)

val add : t -> Attr.t -> t
(** Append. @raise Duplicate_attribute when the name is taken. *)

val rename : t -> old_name:string -> new_name:string -> t
(** @raise No_such_attribute / @raise Duplicate_attribute accordingly. *)

val concat : t -> t -> t
(** Join-product schema; clashing right-hand names get a ["_r"] suffix
    (repeated until fresh). *)

val typecheck : t -> Value.t array -> bool
(** Arity and per-position type membership. *)

val empty : t
