(** Simulated wall clock, in seconds.

    All costs in the system (query latency, maintenance work, abort cost)
    are expressed as advances of this clock, replacing the wall-clock
    measurements of the paper's Oracle8i testbed with deterministic
    simulated time. *)

type t = { mutable now : float }

let create ?(start = 0.0) () = { now = start }

let now c = c.now

(** [advance c dt] moves time forward by [dt] seconds.
    @raise Invalid_argument on negative [dt]. *)
let advance c dt =
  if dt < 0.0 then invalid_arg "Clock.advance: negative duration";
  c.now <- c.now +. dt

(** [advance_to c t] moves time forward to absolute time [t]; moving
    backwards is a programming error. *)
let advance_to c t =
  if t < c.now -. 1e-9 then
    invalid_arg
      (Fmt.str "Clock.advance_to: %.6f is before current time %.6f" t c.now);
  if t > c.now then c.now <- t

let reset ?(start = 0.0) c = c.now <- start

let pp ppf c = Fmt.pf ppf "t=%.3fs" c.now
