(** Timeline of autonomous source commits.

    Sources in a loosely-coupled environment commit updates at times of
    their own choosing; the timeline holds those future commits, ordered by
    timestamp.  The view-manager side of the simulation pops every commit
    whose time has passed whenever the simulated clock advances — which
    implements Definition 2's conflict condition exactly: an update
    "committed before the maintenance query is answered" is applied to the
    source (and enqueued at the view manager) before the query result is
    computed. *)

open Dyno_relational

type event = Du of Update.t | Sc of Schema_change.t

let event_source = function
  | Du u -> Update.source u
  | Sc sc -> Schema_change.source sc

let event_rel = function Du u -> Update.rel u | Sc sc -> Schema_change.rel sc

let is_sc = function Sc _ -> true | Du _ -> false

let pp_event ppf = function
  | Du u -> Update.pp ppf u
  | Sc sc -> Schema_change.pp ppf sc

type entry = { time : float; seq : int; event : event }

type t = { mutable pending : entry list; mutable next_seq : int }
(* [pending] is kept sorted by (time, seq); workloads are a few thousand
   events, so a sorted list is simpler than a heap and fast enough. *)

let create () = { pending = []; next_seq = 0 }

let compare_entry a b =
  match Float.compare a.time b.time with
  | 0 -> Int.compare a.seq b.seq
  | c -> c

(** [schedule t ~time event] enqueues a commit at absolute time [time];
    ties are broken by scheduling order. *)
let schedule t ~time event =
  let e = { time; seq = t.next_seq; event } in
  t.next_seq <- t.next_seq + 1;
  t.pending <- List.sort compare_entry (e :: t.pending)

let of_list entries =
  let t = create () in
  List.iter (fun (time, ev) -> schedule t ~time ev) entries;
  t

let is_empty t = t.pending = []

let length t = List.length t.pending

(** Earliest pending commit time, if any. *)
let next_time t =
  match t.pending with [] -> None | e :: _ -> Some e.time

(** [pop_until t ~time] removes and returns (in order) every commit with
    timestamp ≤ [time]. *)
let pop_until t ~time =
  let due, rest =
    List.partition (fun e -> e.time <= time +. 1e-12) t.pending
  in
  t.pending <- rest;
  due

let peek_all t = t.pending

let pp_entry ppf e = Fmt.pf ppf "@[<h>[%.3fs #%d] %a@]" e.time e.seq pp_event e.event

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp_entry) t.pending
