(** Timeline of autonomous source commits.  Sources commit at times of
    their own choosing; whenever the simulated clock advances, every
    commit whose time has passed is applied — implementing Definition 2's
    conflict condition exactly (an update "committed before the query is
    answered" is applied before the answer is computed). *)

open Dyno_relational

type event = Du of Update.t | Sc of Schema_change.t

val event_source : event -> string
val event_rel : event -> string
val is_sc : event -> bool
val pp_event : Format.formatter -> event -> unit

type entry = { time : float; seq : int; event : event }

type t

val create : unit -> t

val schedule : t -> time:float -> event -> unit
(** Enqueue a commit at an absolute time; ties break by scheduling order. *)

val of_list : (float * event) list -> t
val is_empty : t -> bool
val length : t -> int

val next_time : t -> float option
(** Earliest pending commit time. *)

val pop_until : t -> time:float -> entry list
(** Remove and return, in order, every commit with timestamp ≤ [time]. *)

val peek_all : t -> entry list
val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit
