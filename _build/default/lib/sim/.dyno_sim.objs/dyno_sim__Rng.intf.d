lib/sim/rng.mli:
