lib/sim/clock.ml: Fmt
