lib/sim/timeline.mli: Dyno_relational Format Schema_change Update
