lib/sim/rng.ml: Array Char List Random String
