lib/sim/timeline.ml: Dyno_relational Float Fmt Int List Schema_change Update
