(** Simulated wall clock, in seconds.  All costs in the system (query
    latency, maintenance work, abort cost) are expressed as advances of
    this clock. *)

type t

val create : ?start:float -> unit -> t
val now : t -> float

val advance : t -> float -> unit
(** @raise Invalid_argument on a negative duration. *)

val advance_to : t -> float -> unit
(** Move to an absolute time; @raise Invalid_argument when moving
    backwards. *)

val reset : ?start:float -> t -> unit
val pp : Format.formatter -> t -> unit
