lib/va/adapt.ml: Dyno_relational Dyno_sim Dyno_source Dyno_view Dyno_vm Eval Fmt List Mat_view Query Query_engine Relation Schema String Update Update_msg View_def
