lib/va/batch.ml: Adapt Dyno_relational Dyno_sim Dyno_source Dyno_view Dyno_vm Dyno_vs Fmt Hashtbl List Mat_view Query Query_engine Relation Schema Schema_change String Update Update_msg View_def
