lib/va/adapt.mli: Dyno_relational Dyno_source Dyno_view Mat_view Query Query_engine Relation Schema
